#include "attacks/channel_crack.h"

#include "common/error.h"
#include "storage/codec.h"
#include "websvc/http.h"

namespace amnesia::attacks {

namespace {

constexpr std::size_t kNodeHeader = 9;
constexpr std::uint8_t kClientHello = 0x01;
constexpr std::uint8_t kServerHello = 0x02;
constexpr std::uint8_t kData = 0x03;
constexpr std::size_t kNonceLen = 16;

Bytes direction_aad(std::uint8_t direction, std::uint64_t channel_id) {
  storage::BufWriter w;
  w.u8(direction);
  w.u64(channel_id);
  return w.take();
}

}  // namespace

WireTap::WireTap(simnet::Network& network, const simnet::NodeId& from,
                 const simnet::NodeId& to)
    : network_(network) {
  tap_id_ = network_.add_tap(from, to, [this](Micros, simnet::Message& msg) {
    frames_.push_back(msg);
    return simnet::TapAction::kPass;
  });
}

WireTap::~WireTap() { network_.remove_tap(tap_id_); }

std::optional<Bytes> envelope_of(const simnet::Message& frame) {
  if (frame.payload.size() <= kNodeHeader) return std::nullopt;
  return Bytes(frame.payload.begin() + kNodeHeader, frame.payload.end());
}

std::vector<Bytes> decrypt_records(const std::vector<simnet::Message>& frames,
                                   const securechan::ChannelKeys& keys,
                                   Direction direction) {
  std::vector<Bytes> plaintexts;
  const bool c2s = direction == Direction::kClientToServer;
  const Bytes& key = c2s ? keys.client_to_server_key
                         : keys.server_to_client_key;
  const Bytes& iv = c2s ? keys.client_to_server_iv
                        : keys.server_to_client_iv;
  for (const auto& frame : frames) {
    const auto env = envelope_of(frame);
    if (!env || (*env)[0] != kData) continue;
    try {
      storage::BufReader r(*env);
      r.u8();  // type
      const std::uint64_t channel_id = r.u64();
      const std::uint64_t seq = r.u64();
      const Bytes sealed = r.bytes();
      const auto plain = securechan::open_record(
          key, iv, seq, direction_aad(c2s ? 0 : 1, channel_id), sealed);
      if (plain) plaintexts.push_back(*plain);
    } catch (const FormatError&) {
      continue;
    }
  }
  return plaintexts;
}

std::optional<securechan::ChannelKeys> derive_keys_from_capture(
    const std::vector<simnet::Message>& frames,
    const crypto::X25519Key& server_static_private) {
  std::optional<Bytes> eph_pub;
  std::optional<Bytes> client_nonce;
  for (const auto& frame : frames) {
    const auto env = envelope_of(frame);
    if (!env) continue;
    try {
      storage::BufReader r(*env);
      const std::uint8_t type = r.u8();
      if (type == kClientHello) {
        Bytes pub;
        for (int i = 0; i < 32; ++i) pub.push_back(r.u8());
        Bytes nonce;
        for (std::size_t i = 0; i < kNonceLen; ++i) nonce.push_back(r.u8());
        eph_pub = std::move(pub);
        client_nonce = std::move(nonce);
      } else if (type == kServerHello && eph_pub) {
        Bytes server_nonce;
        for (std::size_t i = 0; i < kNonceLen; ++i) {
          server_nonce.push_back(r.u8());
        }
        // ss = x25519(static_priv, eph_pub): no forward secrecy against
        // static-key compromise.
        const auto shared = crypto::x25519(
            ByteView(server_static_private.data(),
                     server_static_private.size()),
            *eph_pub);
        return securechan::derive_keys(ByteView(shared.data(), shared.size()),
                                       *client_nonce, server_nonce);
      }
    } catch (const FormatError&) {
      continue;
    }
  }
  return std::nullopt;
}

std::optional<std::string> scrape_form_field(
    const std::vector<Bytes>& plaintexts, const std::string& field) {
  for (const auto& plain : plaintexts) {
    const std::string text = to_string(plain);
    // Plaintexts are serialized HTTP messages; the form body follows the
    // blank line.
    const std::size_t body_at = text.find("\r\n\r\n");
    if (body_at == std::string::npos) continue;
    try {
      const auto fields =
          websvc::form_decode(text.substr(body_at + 4));
      const auto it = fields.find(field);
      if (it != fields.end()) return it->second;
    } catch (const Error&) {
      continue;
    }
  }
  return std::nullopt;
}

}  // namespace amnesia::attacks
