#include "attacks/scenarios.h"

#include "attacks/guessing.h"
#include "core/generate.h"
#include "crypto/sha256.h"

namespace amnesia::attacks {

namespace {

/// Synchronously generates a password through the real pipeline so the
/// attack has live traffic / ground truth to work with.
std::string ground_truth_password(eval::Testbed& bed,
                                  const core::AccountId& account) {
  const auto result = bed.get_password(account.username, account.domain);
  if (!result.ok()) {
    throw ProtocolError("attack setup: password generation failed: " +
                        result.message());
  }
  return result.value();
}

}  // namespace

ServerBreachReport run_server_breach(
    eval::Testbed& bed, const std::string& victim,
    const std::vector<std::string>& mp_dictionary) {
  ServerBreachReport report;

  // The breach: full read of the server database (data at rest).
  const auto& db = bed.server().db();
  report.users_exposed = db.raw().table("users").size();
  const auto user = db.get_user(victim);
  if (!user) return report;

  report.oid_exposed = true;  // Oid is stored in the clear (Table I)
  report.registration_id_exposed = user->registration_id.has_value();
  const auto accounts = db.list_accounts(victim);
  report.seeds_exposed = !accounts.empty();
  for (const auto& account : accounts) {
    report.visible_accounts.push_back(account.id.username + "@" +
                                      account.id.domain);
  }

  // Password recovery without the phone requires the 256-bit token T.
  report.token_bruteforce_space_log10 = bit_space_log10(256);
  report.site_password_recovered = false;  // structurally impossible here

  // Offline dictionary attack on H(MP, salt).
  report.dictionary_size = mp_dictionary.size();
  for (const auto& guess : mp_dictionary) {
    if (crypto::PasswordHasher::verify(to_bytes(guess), user->mp_record)) {
      report.master_password_cracked = true;
      report.cracked_master_password = guess;
      break;
    }
  }
  return report;
}

PhoneCompromiseReport run_phone_compromise(eval::Testbed& bed,
                                           const std::string& victim,
                                           const core::AccountId& account) {
  PhoneCompromiseReport report;

  // Ground truth for comparison (generated before the "theft").
  const std::string real_password = ground_truth_password(bed, account);

  // The theft: full K_p = (Pid, T_E).
  const core::PhoneSecrets stolen_kp = bed.phone().secrets();
  report.kp_extracted = true;
  report.entry_table_size = stolen_kp.entry_table.size();

  // Without K_s the attacker cannot form R (sigma is 256-bit and
  // server-side) nor the final hash (Oid is server-side).
  report.seed_space_log10 = bit_space_log10(256);
  report.site_password_recovered = false;

  // Control experiment: combine the stolen K_p with a server breach.
  const auto ks = bed.server().db().server_secrets(victim);
  if (ks) {
    if (const auto* entry = ks->find(account)) {
      const std::string derived = core::end_to_end_password(
          entry->id, entry->seed, ks->oid, stolen_kp.entry_table,
          entry->policy);
      report.password_recovered_with_server_breach =
          derived == real_password;
    }
  }
  return report;
}

RendezvousEavesdropReport run_rendezvous_eavesdrop(
    eval::Testbed& bed, const std::string& victim,
    const core::AccountId& account,
    const std::vector<core::AccountId>& candidates) {
  (void)victim;
  RendezvousEavesdropReport report;

  WireTap tap(bed.net(), "gcm", "phone");
  ground_truth_password(bed, account);

  std::vector<core::Request> observed_requests;
  for (const auto& frame : tap.captured()) {
    const auto env = envelope_of(frame);
    if (!env) continue;
    // GCM one-way pushes carry the PasswordRequestPush in the clear.
    const auto push = core::PasswordRequestPush::decode(*env);
    if (push) {
      observed_requests.push_back(push->request);
      ++report.requests_observed;
    }
  }
  report.push_payload_readable = report.requests_observed > 0;

  // The attack: match R against H(u || d) for candidate accounts. sigma
  // blinds R, so no candidate matches.
  for (const auto& request : observed_requests) {
    for (const auto& candidate : candidates) {
      const Bytes guess = crypto::sha256(
          to_bytes(candidate.username + candidate.domain));
      if (ct_equal(guess, request.bytes())) {
        report.account_identified = true;
      }
    }
  }

  // Counterfactual: had the protocol used R' = H(u || d) without sigma,
  // the same matching identifies the account immediately.
  const Bytes unseeded =
      crypto::sha256(to_bytes(account.username + account.domain));
  for (const auto& candidate : candidates) {
    const Bytes guess =
        crypto::sha256(to_bytes(candidate.username + candidate.domain));
    if (ct_equal(guess, unseeded) && candidate == account) {
      report.account_identified_without_seed = true;
    }
  }
  return report;
}

HttpsCompromiseReport run_browser_leg_compromise(
    eval::Testbed& bed, const std::string& victim,
    const core::AccountId& account) {
  (void)victim;
  HttpsCompromiseReport report;

  WireTap tap(bed.net(), "", "");
  const std::string real_password = ground_truth_password(bed, account);

  // Endpoint compromise: the adversary holds the browser's channel keys.
  const auto* keys = bed.browser().channel().debug_keys();
  if (keys == nullptr) return report;

  // Only frames on the browser<->server path will decrypt.
  const auto responses =
      decrypt_records(tap.captured(), *keys, Direction::kServerToClient);
  report.records_decrypted = responses.size();
  const auto scraped = scrape_form_field(responses, "password");
  if (scraped && *scraped == real_password) {
    report.generated_password_stolen = true;
    report.stolen_password = *scraped;
  }
  return report;
}

HttpsCompromiseReport run_phone_leg_compromise(eval::Testbed& bed,
                                               const std::string& victim,
                                               const core::AccountId& account) {
  (void)victim;
  HttpsCompromiseReport report;

  WireTap tap(bed.net(), "phone", "amnesia-server");
  const std::string real_password = ground_truth_password(bed, account);

  const auto* keys = bed.phone().server_channel().debug_keys();
  if (keys == nullptr) return report;

  const auto submissions =
      decrypt_records(tap.captured(), *keys, Direction::kClientToServer);
  report.records_decrypted = submissions.size();
  const auto token_hex = scrape_form_field(submissions, "token");
  report.token_observed = token_hex.has_value();
  // "having T alone is useless": no Oid, no sigma, no password. The
  // scraped traffic contains no password field either way.
  const auto password = scrape_form_field(submissions, "password");
  report.password_derived_from_token =
      password.has_value() && *password == real_password;
  return report;
}

RogueRequestReport run_rogue_request(eval::Testbed& bed,
                                     const std::string& victim,
                                     const core::AccountId& account,
                                     bool user_accepts) {
  RogueRequestReport report;

  // Breach haul: K_s (Oid + seeds), Rid, and the channel static key.
  const auto ks = bed.server().db().server_secrets(victim);
  const auto user = bed.server().db().get_user(victim);
  if (!ks || !user || !user->registration_id) return report;
  const auto* entry = ks->find(account);
  if (entry == nullptr) return report;
  const auto static_keys = bed.server().breached_static_keys();

  // The user's stance toward an unexpected push.
  bed.phone().set_confirmation_policy(
      [user_accepts](const core::PasswordRequestPush&) {
        return user_accepts;
      });

  // Passive wiretap on the phone->server leg; force a fresh *full*
  // handshake so the capture includes the hellos the key-derivation
  // needs (a ticket-preserving reset would resume instead, and a resume
  // hello carries no ephemeral public key to attack).
  WireTap uplink_tap(bed.net(), "phone", "amnesia-server");
  WireTap downlink_tap(bed.net(), "amnesia-server", "phone");
  bed.phone().server_channel().forget_ticket();
  bed.phone().server_channel().reset();

  // The rogue push: R computed from the stolen sigma, sent through the
  // real rendezvous service with the victim's registration id.
  simnet::Node mallory(bed.net(), "mallory-server");
  rendezvous::PushClient mallory_push(mallory, "gcm");
  const core::Request r = core::make_request(account, entry->seed);
  const core::PasswordRequestPush push{/*request_id=*/9999, r,
                                       /*origin_ip=*/"198.51.100.66",
                                       /*tstart_us=*/0};
  bool delivered = false;
  mallory_push.push(*user->registration_id, push.encode(),
                    /*ttl_us=*/60'000'000,
                    [&](Status s) { delivered = s.ok(); });
  bed.sim().run();
  report.push_delivered = delivered;
  report.user_accepted =
      user_accepts && bed.phone().stats().pushes_received > 0;

  // Merge both directions so the handshake pair is complete — the client
  // hello (uplink) must precede the server hello (downlink) — then derive
  // the channel keys from the static private key (no forward secrecy).
  std::vector<simnet::Message> all_frames = uplink_tap.captured();
  all_frames.insert(all_frames.end(), downlink_tap.captured().begin(),
                    downlink_tap.captured().end());
  const auto keys =
      derive_keys_from_capture(all_frames, static_keys.private_key);
  if (keys) {
    const auto submissions = decrypt_records(uplink_tap.captured(), *keys,
                                             Direction::kClientToServer);
    const auto token_hex = scrape_form_field(submissions, "token");
    if (token_hex) {
      report.token_captured = true;
      // Combine the stolen token with the stolen K_s: game over.
      const core::Token token = core::Token::from_hex(*token_hex);
      const std::string derived = core::generate_password(
          token, ks->oid, entry->seed, entry->policy);
      // Validate against the pipeline's ground truth.
      bed.phone().set_confirmation_policy(
          [](const core::PasswordRequestPush&) { return true; });
      const std::string real_password = ground_truth_password(bed, account);
      report.site_password_recovered = derived == real_password;
    }
  }
  return report;
}

}  // namespace amnesia::attacks
