#include "attacks/guessing.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace amnesia::attacks {

double log10_keyspace(double alphabet_size, double length) {
  return length * std::log10(alphabet_size);
}

double token_space_log10(std::size_t entry_table_size) {
  return log10_keyspace(static_cast<double>(entry_table_size), 16.0);
}

double password_space_log10(const core::PasswordPolicy& policy) {
  return log10_keyspace(static_cast<double>(policy.charset.size()),
                        static_cast<double>(policy.length));
}

double bit_space_log10(int bits) { return bits * std::log10(2.0); }

ExpectedComposition expected_composition(const core::PasswordPolicy& policy) {
  std::size_t lower = 0, upper = 0, digits = 0, specials = 0;
  for (const char c : policy.charset.characters()) {
    const auto uc = static_cast<unsigned char>(c);
    if (std::islower(uc)) {
      ++lower;
    } else if (std::isupper(uc)) {
      ++upper;
    } else if (std::isdigit(uc)) {
      ++digits;
    } else {
      ++specials;
    }
  }
  const double n = static_cast<double>(policy.charset.size());
  const double len = static_cast<double>(policy.length);
  return ExpectedComposition{len * lower / n, len * upper / n,
                             len * digits / n, len * specials / n};
}

double index_bias_ratio(std::size_t entry_table_size) {
  const std::size_t n = entry_table_size;
  const std::size_t lo = 65536 / n;           // floor occurrences
  const std::size_t hi = lo + (65536 % n ? 1 : 0);
  if (lo == 0) return 0.0;  // n > 65536 cannot happen (Params::validate)
  return static_cast<double>(hi) / static_cast<double>(lo);
}

double index_bias_entropy_loss_bits(std::size_t entry_table_size) {
  const std::size_t n = entry_table_size;
  const std::size_t rem = 65536 % n;
  const double lo = std::floor(65536.0 / n);
  const double hi = lo + 1;
  // Shannon entropy of the actual index distribution...
  double entropy = 0.0;
  if (rem > 0) {
    const double p_hi = hi / 65536.0;
    entropy -= rem * p_hi * std::log2(p_hi);
  }
  const double p_lo = lo / 65536.0;
  if (lo > 0) entropy -= (n - rem) * p_lo * std::log2(p_lo);
  // ...versus the uniform log2(N).
  return std::log2(static_cast<double>(n)) - entropy;
}

double crack_seconds_log10(double space_log10, double guesses_per_second) {
  return space_log10 + std::log10(0.5) - std::log10(guesses_per_second);
}

std::string scientific(double value_log10) {
  const double exponent = std::floor(value_log10);
  const double mantissa = std::pow(10.0, value_log10 - exponent);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fe%+03d", mantissa,
                static_cast<int>(exponent));
  return buf;
}

}  // namespace amnesia::attacks
