// Executable adversaries for the five attack vectors of paper section IV.
//
// Each scenario runs a real attack against a live Testbed and returns a
// structured report of what the adversary learned; tests assert the
// paper's claims hold (and the admitted exposures occur), and
// bench_security_attacks prints the reports side by side with the
// baseline managers' outcomes.
#pragma once

#include <string>
#include <vector>

#include "attacks/channel_crack.h"
#include "eval/testbed.h"

namespace amnesia::attacks {

// ---- IV-C: server breach ------------------------------------------------

struct ServerBreachReport {
  std::size_t users_exposed = 0;
  // "the attacker would know the accounts and usernames that the victims
  // are managing under Amnesia"
  std::vector<std::string> visible_accounts;  // "username@domain"
  bool oid_exposed = false;
  bool seeds_exposed = false;
  bool registration_id_exposed = false;
  // What the attacker could NOT do:
  bool site_password_recovered = false;  // must stay false
  double token_bruteforce_space_log10 = 0.0;  // ~log10(2^256)
  // Offline dictionary attack on the stored H(MP, salt):
  std::size_t dictionary_size = 0;
  bool master_password_cracked = false;
  std::string cracked_master_password;
};

/// Dumps the server's data at rest and attacks it. `mp_dictionary` is the
/// attacker's guess list (include the real MP to model a weak password).
ServerBreachReport run_server_breach(
    eval::Testbed& bed, const std::string& victim,
    const std::vector<std::string>& mp_dictionary);

// ---- IV-D: phone compromise ----------------------------------------------

struct PhoneCompromiseReport {
  bool kp_extracted = false;
  std::size_t entry_table_size = 0;
  // Without K_s the attacker cannot even form R for a known account
  // (sigma is server-side); these spaces quantify the brute force left.
  double seed_space_log10 = 0.0;  // 2^256 per account seed
  bool site_password_recovered = false;  // must stay false
  // Control: if the attacker ALSO breaches the server (both factors),
  // recovery succeeds — two-factor security is gone, as the paper states.
  bool password_recovered_with_server_breach = false;
};

PhoneCompromiseReport run_phone_compromise(eval::Testbed& bed,
                                           const std::string& victim,
                                           const core::AccountId& account);

// ---- IV-B: rendezvous eavesdropping ---------------------------------------

struct RendezvousEavesdropReport {
  std::size_t requests_observed = 0;
  bool push_payload_readable = true;  // GCM leg is plaintext to the service
  // With sigma in R the attacker cannot confirm the target account:
  bool account_identified = false;  // must stay false
  // Counterfactual with R' = H(u || d) (no sigma), the match succeeds:
  bool account_identified_without_seed = false;  // demonstrated true
};

/// Eavesdrops the rendezvous path during one password generation for
/// `account`, then tries to identify the account from a candidate list.
RendezvousEavesdropReport run_rendezvous_eavesdrop(
    eval::Testbed& bed, const std::string& victim,
    const core::AccountId& account,
    const std::vector<core::AccountId>& candidates);

// ---- IV-A: broken HTTPS ---------------------------------------------------

struct HttpsCompromiseReport {
  std::size_t records_decrypted = 0;
  bool generated_password_stolen = false;  // browser leg: expected true
  std::string stolen_password;
  bool token_observed = false;             // phone leg: expected true
  bool password_derived_from_token = false;  // must stay false
};

/// Browser<->server leg: adversary holds the browser's channel keys.
/// "the attacker can eavesdrop on password P" — expected to succeed.
HttpsCompromiseReport run_browser_leg_compromise(
    eval::Testbed& bed, const std::string& victim,
    const core::AccountId& account);

/// Phone<->server leg: adversary holds the phone's channel keys. "having
/// T alone is useless" — the token is visible but no password follows.
HttpsCompromiseReport run_phone_leg_compromise(eval::Testbed& bed,
                                               const std::string& victim,
                                               const core::AccountId& account);

// ---- IV-C closing discussion: the rogue-request attack ---------------------

struct RogueRequestReport {
  bool push_delivered = false;
  bool user_accepted = false;
  bool token_captured = false;
  bool site_password_recovered = false;
};

/// A full server-breach adversary (K_s, Rid, and the channel static key —
/// all data at rest) sends his own request R through the rendezvous
/// service and passively decrypts the phone's token submission. Succeeds
/// exactly when the naive user accepts the unexpected push
/// (`user_accepts`); a vigilant user who declines stays safe.
RogueRequestReport run_rogue_request(eval::Testbed& bed,
                                     const std::string& victim,
                                     const core::AccountId& account,
                                     bool user_accepts);

}  // namespace amnesia::attacks
