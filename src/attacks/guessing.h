// Guessing-attack arithmetic (paper sections III-B3, IV-C, IV-E).
//
// Keyspace sizes in this analysis exceed every native integer type
// (5000^16, 94^32, 2^256), so everything is carried in log10.
#pragma once

#include <cstddef>
#include <string>

#include "core/charset.h"

namespace amnesia::attacks {

/// log10(alphabet^length).
double log10_keyspace(double alphabet_size, double length);

/// log10 of the number of distinct tokens: N^16 (section III-B3 derives
/// 5000^16 ~ 1.53e59).
double token_space_log10(std::size_t entry_table_size);

/// log10 of the password space: |charset|^length (section IV-E derives
/// 94^32 ~ 1.38e63).
double password_space_log10(const core::PasswordPolicy& policy);

/// log10 of the 2^bits brute-force space (e.g. 256 for T).
double bit_space_log10(int bits);

/// Expected per-category character counts in a generated password,
/// assuming uniform template output (section IV-E's "roughly 9 lowercase,
/// 9 uppercase, 3 numerals, 11 specials" for the default table).
struct ExpectedComposition {
  double lowercase;
  double uppercase;
  double digits;
  double specials;
};
ExpectedComposition expected_composition(const core::PasswordPolicy& policy);

/// The `segment mod N` selection bias the paper's Algorithm 1 carries:
/// with 16-bit segments, values below 65536 mod N occur ceil(65536/N)
/// times, the rest floor(65536/N) times. Returns the max/min probability
/// ratio (1.0 = unbiased).
double index_bias_ratio(std::size_t entry_table_size);

/// Effective entropy loss (bits per index) caused by that bias, relative
/// to a uniform choice of N values.
double index_bias_entropy_loss_bits(std::size_t entry_table_size);

/// log10(expected seconds) to exhaust half a keyspace at `rate` guesses
/// per second.
double crack_seconds_log10(double space_log10, double guesses_per_second);

/// Human-readable rendering ("1.4e63", "3.1e44 years") for harness output.
std::string scientific(double value_log10);

}  // namespace amnesia::attacks
