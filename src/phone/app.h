// The Amnesia mobile application (paper sections III-A3, V-B).
//
// Mirrors the prototype's three components: a push (GCM) listener, a
// cryptography service, and a SQLite-backed database handler holding
// K_p = (Pid, T_E). A confirmation policy stands in for the Android
// notification the user taps (Fig. 2b); the latency evaluation sets it to
// auto-accept, exactly as the paper removed the verification step for its
// measurements.
//
// Lifecycle: install() -> register_with_rendezvous() -> pair() -> serve
// password requests; backup_to_cloud() enables phone-compromise recovery,
// submit_pid_for_mp_change() drives master-password recovery.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "cloud/blob_store.h"
#include "core/generate.h"
#include "core/keys.h"
#include "core/protocol.h"
#include "crypto/x25519.h"
#include "rendezvous/push_service.h"
#include "securechan/channel.h"
#include "simnet/node.h"
#include "storage/database.h"
#include "websvc/client.h"

namespace amnesia::phone {

struct PhoneAppConfig {
  simnet::NodeId node_id = "phone";
  simnet::NodeId rendezvous_node = "gcm";
  simnet::NodeId server_node = "amnesia-server";
  crypto::X25519Key server_public_key{};  // the pinned certificate
  simnet::NodeId cloud_node = "cloud";
  std::string cloud_user;    // third-party storage credentials
  std::string cloud_secret;
  std::size_t entry_table_size = 5000;  // paper's N
  std::string db_path;  // empty = in-memory

  // Token computation cost on the handset (java.security + SQLite reads
  // on the paper's Galaxy Note 4).
  double compute_mean_ms = 25.0;
  double compute_stddev_ms = 8.0;

  // Degraded-mode pull path: when > 0, the app polls the server's
  // POST /push/poll at this interval after registering, so password
  // requests still arrive when the rendezvous push leg is broken (the
  // server parks them there once its breaker opens). 0 = push only, the
  // paper's prototype behaviour.
  Micros poll_interval_us = 0;

  // --- cluster failover (docs/CLUSTER.md) ---

  // Timeout on the phone -> server HTTPS leg. The cluster testbeds shrink
  // it so a token POST to a crashed primary fails fast enough to retry
  // against the promoted follower. 0 = the simnet default (10 s).
  Micros server_rpc_timeout_us = 0;
  // Bounded retry of the /token POST on transport failure. 0 reproduces
  // the prototype (fire once and forget); the cluster testbeds allow a
  // few retries so a token survives a mid-round-trip primary crash.
  int token_retry_max = 0;
  Micros token_retry_delay_us = 1'000'000;
};

struct PhoneAppStats {
  std::uint64_t pushes_received = 0;
  std::uint64_t tokens_sent = 0;
  std::uint64_t requests_declined = 0;
  std::uint64_t malformed_pushes = 0;
  std::uint64_t polls_sent = 0;        // /push/poll round-trips issued
  std::uint64_t polled_pushes = 0;     // requests recovered via polling
  std::uint64_t duplicate_pushes = 0;  // same request seen twice (push+poll)
};

class PhoneApp {
 public:
  /// Decides whether the user accepts a password request. The default
  /// policy accepts everything (the latency-test configuration); tests of
  /// the rogue-request attack install an inspecting policy.
  using ConfirmationPolicy =
      std::function<bool(const core::PasswordRequestPush&)>;

  PhoneApp(simnet::Simulation& sim, simnet::Network& network,
           RandomSource& rng, PhoneAppConfig config);

  /// Generates a fresh K_p = (Pid, T_E), as happens on every app install.
  void install();
  bool installed() const { return secrets_.has_value(); }

  /// Obtains a registration id from the rendezvous service.
  void register_with_rendezvous(std::function<void(Status)> cb);

  /// Completes the CAPTCHA pairing with the Amnesia server (the user has
  /// read `captcha` off the web page and typed it into the app).
  void pair(const std::string& amnesia_user, const std::string& captcha,
            std::function<void(Status)> cb);

  void set_confirmation_policy(ConfirmationPolicy policy) {
    confirm_ = std::move(policy);
  }

  /// One-time backup of K_p to the third-party cloud (section III-C1).
  void backup_to_cloud(std::function<void(Status)> cb);

  /// Master-password recovery, phone side: submit Pid for verification.
  void submit_pid_for_mp_change(const std::string& amnesia_user,
                                std::function<void(Status)> cb);

  /// Announce reachability to the rendezvous service after downtime.
  void reconnect(std::function<void(Status)> cb);

  /// Repoints the server HTTPS leg at another node (cluster failover:
  /// the promoted follower). Ticket-preserving; pending /token retries
  /// pick the new target up automatically.
  void set_server_node(simnet::NodeId server);

  const PhoneAppStats& stats() const { return stats_; }
  const std::optional<std::string>& registration_id() const {
    return registration_id_;
  }

  /// K_p view — what a phone-compromise adversary exfiltrates, and what
  /// the backup protocol serializes.
  const core::PhoneSecrets& secrets() const;

  const simnet::NodeId& node_id() const { return node_->id(); }

  /// Breach surface for the section-IV attack harness (phone-to-server
  /// HTTPS leg compromise; also used to force a re-handshake a MITM can
  /// observe).
  securechan::SecureClient& server_channel() { return server_channel_; }

  /// Joins the phone into distributed traces: pushes that carry a trace
  /// context get a "phone.confirm" span (decision + token compute), and
  /// the token/decline POSTs ride the same trace back to the server.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  void on_push(const Bytes& payload);
  /// Posts /token with bounded retry on transport failure (see
  /// PhoneAppConfig::token_retry_max).
  void post_token(std::map<std::string, std::string> form,
                  obs::TraceContext trace, int attempts_left);
  void persist_secrets();
  void load_secrets();
  void schedule_poll();
  void poll_once();

  simnet::Simulation& sim_;
  RandomSource& rng_;
  PhoneAppConfig config_;
  std::unique_ptr<simnet::Node> node_;
  securechan::SecureClient server_channel_;
  websvc::HttpClient server_http_;
  rendezvous::PushClient push_client_;
  cloud::BlobClient cloud_client_;
  storage::Database db_;

  std::optional<core::PhoneSecrets> secrets_;
  std::optional<std::string> registration_id_;
  ConfirmationPolicy confirm_;
  PhoneAppStats stats_;
  obs::Tracer* tracer_ = nullptr;

  // Recently handled request ids, so a request delivered both by push and
  // by the poll fallback is answered once. Bounded FIFO.
  std::set<std::uint64_t> handled_requests_;
  std::deque<std::uint64_t> handled_order_;
  bool polling_ = false;
};

}  // namespace amnesia::phone
