#include "phone/app.h"

#include <sstream>

#include "common/error.h"
#include "common/logging.h"

namespace amnesia::phone {

using storage::Row;
using storage::Schema;
using storage::Value;
using storage::ValueType;

namespace {

Schema secrets_schema() {
  // Table II: the Pid row plus one row per entry value; we persist the
  // whole K_p as a single serialized blob keyed by a constant, which is
  // equivalent and keeps the hot path (token generation) in memory.
  return Schema{.columns = {{"key", ValueType::kText},
                            {"blob", ValueType::kBlob}},
                .primary_key = 0};
}

constexpr char kSecretsKey[] = "kp";
constexpr char kBackupBlobName[] = "amnesia-kp-backup";

}  // namespace

PhoneApp::PhoneApp(simnet::Simulation& sim, simnet::Network& network,
                   RandomSource& rng, PhoneAppConfig config)
    : sim_(sim),
      rng_(rng),
      config_(std::move(config)),
      node_(std::make_unique<simnet::Node>(network, config_.node_id)),
      server_channel_(*node_, config_.server_node, config_.server_public_key,
                      rng,
                      config_.server_rpc_timeout_us > 0
                          ? config_.server_rpc_timeout_us
                          : simnet::Node::kDefaultTimeoutUs),
      server_http_([this](Bytes wire, std::function<void(Result<Bytes>)> cb) {
        server_channel_.request(std::move(wire), std::move(cb));
      }),
      push_client_(*node_, config_.rendezvous_node),
      cloud_client_(*node_, config_.cloud_node, config_.cloud_user,
                    config_.cloud_secret),
      db_(config_.db_path),
      confirm_([](const core::PasswordRequestPush&) { return true; }) {
  if (!db_.has_table("secrets")) db_.create_table("secrets", secrets_schema());
  load_secrets();
  node_->set_oneway_handler(
      [this](const simnet::NodeId&, const Bytes& body) { on_push(body); });
}

void PhoneApp::install() {
  // "A new Pid is generated each time the application is installed"
  // (section III-B1); the entry table is likewise fresh.
  secrets_ = core::PhoneSecrets{
      core::PhoneId::generate(rng_),
      core::EntryTable::generate(rng_, config_.entry_table_size)};
  persist_secrets();
  AMNESIA_INFO("phone") << "installed; N=" << secrets_->entry_table.size();
}

void PhoneApp::persist_secrets() {
  db_.upsert("secrets", Row{kSecretsKey, secrets_->serialize()});
}

void PhoneApp::load_secrets() {
  const auto row = db_.table("secrets").get(Value(kSecretsKey));
  if (row) {
    secrets_ = core::PhoneSecrets::deserialize((*row)[1].as_blob());
  }
}

const core::PhoneSecrets& PhoneApp::secrets() const {
  if (!secrets_) throw ProtocolError("PhoneApp: not installed");
  return *secrets_;
}

void PhoneApp::set_metrics(obs::MetricsRegistry* registry) {
  tracer_ = registry ? &registry->tracer() : nullptr;
  server_http_.set_tracer(tracer_, "phone");
}

void PhoneApp::register_with_rendezvous(std::function<void(Status)> cb) {
  // Idempotent, like a real push token: one registration per install,
  // reused across account pairings. Re-registering used to mint a fresh
  // id, which stranded the poll fallback for every user paired before the
  // latest registration — their server records pinned the old id while
  // the app polled only with the new one.
  if (registration_id_) {
    cb(ok_status());
    return;
  }
  push_client_.register_device(
      [this, cb = std::move(cb)](Result<std::string> r) {
        if (!r.ok()) {
          cb(Status(r.failure()));
          return;
        }
        registration_id_ = r.value();
        if (config_.poll_interval_us > 0 && !polling_) {
          polling_ = true;
          schedule_poll();
        }
        cb(ok_status());
      });
}

void PhoneApp::schedule_poll() {
  sim_.schedule_after(config_.poll_interval_us, [this] { poll_once(); });
}

void PhoneApp::poll_once() {
  if (!registration_id_) {
    schedule_poll();
    return;
  }
  ++stats_.polls_sent;
  server_http_.post_form(
      "/push/poll", {{"reg_id", *registration_id_}},
      [this](Result<websvc::Response> r) {
        if (r.ok() && r.value().status == 200) {
          std::istringstream lines(r.value().body);
          std::string line;
          while (std::getline(lines, line)) {
            if (line.empty()) continue;
            try {
              ++stats_.polled_pushes;
              on_push(base64_decode(line));
            } catch (const Error&) {
              ++stats_.malformed_pushes;
            }
          }
        }
        schedule_poll();
      });
}

void PhoneApp::pair(const std::string& amnesia_user,
                    const std::string& captcha,
                    std::function<void(Status)> cb) {
  if (!secrets_ || !registration_id_) {
    cb(Status(Err::kInvalidArgument,
              "install() and register_with_rendezvous() first"));
    return;
  }
  server_http_.post_form(
      "/pair/complete",
      {{"user", amnesia_user},
       {"captcha", captcha},
       {"pid", secrets_->pid.hex()},
       {"reg_id", *registration_id_}},
      [cb = std::move(cb)](Result<websvc::Response> r) {
        if (!r.ok()) {
          cb(Status(r.failure()));
          return;
        }
        if (r.value().status != 200) {
          cb(Status(Err::kVerificationFailed, r.value().body));
          return;
        }
        cb(ok_status());
      });
}

void PhoneApp::on_push(const Bytes& payload) {
  ++stats_.pushes_received;
  const auto push = core::PasswordRequestPush::decode(payload);
  if (!push) {
    ++stats_.malformed_pushes;
    AMNESIA_WARN("phone") << "malformed push dropped";
    return;
  }
  if (!secrets_) {
    AMNESIA_WARN("phone") << "push before install; dropped";
    return;
  }
  // A request can arrive twice — once by push and once via the poll
  // fallback — but must be answered once.
  if (!handled_requests_.insert(push->request_id).second) {
    ++stats_.duplicate_pushes;
    return;
  }
  handled_order_.push_back(push->request_id);
  if (handled_order_.size() > 256) {
    handled_requests_.erase(handled_order_.front());
    handled_order_.pop_front();
  }
  // A push carrying a trace context joins the login's trace tree: the
  // phone.confirm span covers the accept/decline decision plus the token
  // compute, and parents the token/decline POST's client span.
  obs::TraceContext phone_span;
  if (tracer_) {
    if (const auto parsed = obs::parse_trace_header(push->trace)) {
      phone_span = tracer_->start_span("phone.confirm", "phone", *parsed);
      tracer_->add_attribute(phone_span, "origin_ip", push->origin_ip);
    }
  }
  // The notification: the user sees the origin IP (Fig. 2b) and accepts
  // or declines.
  if (!confirm_(*push)) {
    ++stats_.requests_declined;
    if (phone_span.valid()) tracer_->add_event(phone_span, "declined");
    const obs::ScopedTrace scope(phone_span);
    server_http_.post_form(
        "/token/decline",
        {{"request_id", std::to_string(push->request_id)}},
        [](Result<websvc::Response>) {});
    if (tracer_) tracer_->end(phone_span);
    return;
  }
  // Charge the handset's token-computation time in virtual time, then
  // submit T over the phone's HTTPS leg (direct to the server's static
  // address — no rendezvous on the way back).
  const double compute_ms = std::max(
      0.5, rng_.gaussian(config_.compute_mean_ms, config_.compute_stddev_ms));
  sim_.schedule_after(ms_to_us(compute_ms), [this, push = *push, phone_span] {
    const core::Token token =
        core::generate_token(push.request, secrets_->entry_table);
    post_token({{"request_id", std::to_string(push.request_id)},
                {"token", token.hex()},
                {"tstart", std::to_string(push.tstart_us)}},
               phone_span, config_.token_retry_max);
    if (tracer_) tracer_->end(phone_span);
  });
}

void PhoneApp::post_token(
    std::map<std::string, std::string> form,
    obs::TraceContext trace, int attempts_left) {
  const obs::ScopedTrace scope(trace);
  server_http_.post_form(
      "/token", form,
      [this, form, trace, attempts_left](Result<websvc::Response> r) {
        if (r.ok() && r.value().status == 200) {
          ++stats_.tokens_sent;
          return;
        }
        // Retry only transport failures: the server never saw the token
        // (e.g. the primary crashed mid-round-trip and the promoted
        // follower is not reachable yet). An HTTP error is a verdict.
        if (r.ok() || attempts_left <= 0) return;
        sim_.schedule_after(
            std::max<Micros>(config_.token_retry_delay_us, 1),
            [this, form, trace, attempts_left] {
              post_token(form, trace, attempts_left - 1);
            });
      });
}

void PhoneApp::set_server_node(simnet::NodeId server) {
  config_.server_node = std::move(server);
  server_channel_.retarget(*node_, config_.server_node,
                           config_.server_rpc_timeout_us > 0
                               ? config_.server_rpc_timeout_us
                               : simnet::Node::kDefaultTimeoutUs);
}

void PhoneApp::backup_to_cloud(std::function<void(Status)> cb) {
  if (!secrets_) {
    cb(Status(Err::kInvalidArgument, "not installed"));
    return;
  }
  cloud_client_.put(kBackupBlobName, secrets_->serialize(), std::move(cb));
}

void PhoneApp::submit_pid_for_mp_change(const std::string& amnesia_user,
                                        std::function<void(Status)> cb) {
  if (!secrets_) {
    cb(Status(Err::kInvalidArgument, "not installed"));
    return;
  }
  server_http_.post_form(
      "/recover/mp/confirm",
      {{"user", amnesia_user}, {"pid", secrets_->pid.hex()}},
      [cb = std::move(cb)](Result<websvc::Response> r) {
        if (!r.ok()) {
          cb(Status(r.failure()));
          return;
        }
        if (r.value().status != 200) {
          cb(Status(Err::kVerificationFailed, r.value().body));
          return;
        }
        cb(ok_status());
      });
}

void PhoneApp::reconnect(std::function<void(Status)> cb) {
  if (!registration_id_) {
    cb(Status(Err::kInvalidArgument, "not registered"));
    return;
  }
  push_client_.connect(*registration_id_, std::move(cb));
}

}  // namespace amnesia::phone
