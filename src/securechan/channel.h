// Secure channel: the HTTPS substitute.
//
// The paper protects browser<->server and phone<->server traffic with
// HTTPS under a self-signed certificate that both clients pin. This module
// reproduces that trust model with modern primitives:
//
//   handshake  : ephemeral-static X25519 against the *pinned* server
//                public key (the self-signed-cert analogue), nonces from
//                both sides, HKDF-SHA256 key schedule;
//   records    : ChaCha20-Poly1305, per-direction keys and IVs, explicit
//                sequence numbers XORed into the nonce, direction- and
//                channel-bound AAD, replay detection.
//
// Only the holder of the server's static private key can produce a valid
// key-confirmation record, so a man-in-the-middle without that key cannot
// impersonate the server; like HTTPS, the client is anonymous at this
// layer and authenticates above it with the master password.
//
// Wire envelope (inside a simnet Node RPC body):
//   [0x01] client_hello  : eph_pub(32) nonce_c(16)
//   [0x02] server_hello  : nonce_s(16) channel_id(8) confirm_record [ticket]
//   [0x03] data          : channel_id(8) seq(8) sealed(...) [trace_str]
//   [0x04] resume_hello  : ticket nonce_c(16)
//   [0x05] resume_ok     : nonce_s(16) channel_id(8) confirm_record [ticket]
//   [0x06] resume_reject : (empty)
//
// Resumption (TLS 1.3 style, see ticket.h): the server_hello / resume_ok
// trailing ticket is the session's resumption master secret sealed under
// a process-wide rotating ticket key. A resume_hello replaces the X25519
// exchange on reconnect — one round trip, zero scalar multiplications —
// with fresh channel keys HKDF-derived from the resumption secret and
// both nonces, and ticket chaining (every resumption mints a successor
// ticket under a successor secret). A bounded sliding replay window over
// resume-hello nonces rejects replays; *any* rejection — bad ticket,
// rotated-out key, replay, hostile bytes — answers resume_reject and the
// client falls back transparently to a full handshake.
//
// The optional trailing trace_str is a length-prefixed serialized
// obs::TraceContext — plaintext record *metadata*, deliberately outside
// both the sealed payload and the AAD, so a transport-level observer (or
// the ops tooling) can correlate records with traces without any key
// material. It carries no secrets: ids only.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <tuple>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/x25519.h"
#include "obs/metrics.h"
#include "securechan/ticket.h"
#include "simnet/node.h"

namespace amnesia::storage {
class BufReader;
}

namespace amnesia::securechan {

struct ChannelKeys {
  Bytes client_to_server_key;  // 32 bytes
  Bytes server_to_client_key;  // 32 bytes
  Bytes client_to_server_iv;   // 12 bytes
  Bytes server_to_client_iv;   // 12 bytes

  ChannelKeys() = default;
  ChannelKeys(const ChannelKeys&) = default;
  ChannelKeys& operator=(const ChannelKeys&) = default;
  ChannelKeys(ChannelKeys&&) noexcept = default;
  /// Wipes the keys being replaced before adopting the new ones.
  ChannelKeys& operator=(ChannelKeys&& other) noexcept;
  /// Session keys are zeroized before the memory is released, so torn-down
  /// channels don't leave secrets on the freed heap.
  ~ChannelKeys() { wipe(); }

  void wipe();
};

/// Derives both directions' keys from the X25519 shared secret and the
/// two handshake nonces. Exposed for tests and the attack harness (a
/// "broken HTTPS" adversary is modelled as one that obtained these keys).
ChannelKeys derive_keys(ByteView shared_secret, ByteView client_nonce,
                        ByteView server_nonce);

/// One session's full key schedule: the record keys plus the resumption
/// master secret that seeds the *next* session's ticket. The secret is
/// wiped on destruction.
struct SessionSecrets {
  ChannelKeys keys;
  Bytes resumption_secret;  // kResumptionSecretLen bytes

  SessionSecrets() = default;
  SessionSecrets(SessionSecrets&&) noexcept = default;
  SessionSecrets& operator=(SessionSecrets&&) noexcept = default;
  SessionSecrets(const SessionSecrets&) = delete;
  SessionSecrets& operator=(const SessionSecrets&) = delete;
  ~SessionSecrets() { secure_wipe(resumption_secret); }
};

/// Full-handshake schedule: same HKDF invocation as derive_keys() but
/// extended past the record keys, so the first 88 output bytes — and
/// therefore every record on the wire — are bit-identical to the
/// pre-resumption protocol.
SessionSecrets derive_full_session(ByteView shared_secret,
                                   ByteView client_nonce,
                                   ByteView server_nonce);

/// Resumed-session schedule: keyed by the previous session's resumption
/// secret instead of an X25519 shared secret, under a distinct HKDF info
/// label so the two schedules can never collide.
SessionSecrets derive_resumed_session(ByteView resumption_secret,
                                      ByteView client_nonce,
                                      ByteView server_nonce);

/// Seals/opens one record. `seq` is XORed into the trailing 8 bytes of the
/// IV; `aad` should bind direction and channel id.
Bytes seal_record(const Bytes& key, const Bytes& iv, std::uint64_t seq,
                  ByteView aad, ByteView plaintext);
std::optional<Bytes> open_record(const Bytes& key, const Bytes& iv,
                                 std::uint64_t seq, ByteView aad,
                                 ByteView sealed);

/// Allocation-free variants: the nonce lives on the stack and `out` is a
/// caller-owned scratch buffer whose capacity is reused across records
/// (see crypto::aead_seal_into / aead_open_into for aliasing rules).
void seal_record_into(const Bytes& key, const Bytes& iv, std::uint64_t seq,
                      ByteView aad, ByteView plaintext, Bytes& out);
bool open_record_into(const Bytes& key, const Bytes& iv, std::uint64_t seq,
                      ByteView aad, ByteView sealed, Bytes& out);

struct SecureServerStats {
  std::uint64_t handshakes = 0;
  std::uint64_t records_opened = 0;
  std::uint64_t records_rejected = 0;
  std::uint64_t replays_rejected = 0;
  std::uint64_t resumptions = 0;
  std::uint64_t resumptions_rejected = 0;   // all causes, incl. replays
  std::uint64_t resume_replays_rejected = 0;  // replay-window hits only
  std::uint64_t tickets_issued = 0;
};

/// Server side: terminates secure channels and hands decrypted request
/// bytes to a plaintext handler (normally HttpServer::handle_bytes).
class SecureServer {
 public:
  using PlainHandler = std::function<void(const Bytes& plaintext,
                                          std::function<void(Bytes)> respond)>;

  SecureServer(crypto::X25519KeyPair static_keys, RandomSource& rng);

  const crypto::X25519Key& public_key() const { return static_keys_.public_key; }

  void set_handler(PlainHandler handler) { handler_ = std::move(handler); }

  /// Installs this channel terminator as `node`'s RPC handler.
  void bind(simnet::Node& node);

  /// Handles one raw RPC body (exposed for tests without a network).
  void handle_wire(const Bytes& wire, std::function<void(Bytes)> respond);

  const SecureServerStats& stats() const { return stats_; }

  /// Publishes securechan.* metrics: handshake / record counters and
  /// wire bytes_in / bytes_out (ciphertext sizes, the paper's Table 3
  /// traffic view).
  void set_metrics(obs::MetricsRegistry* registry);

  /// Replaces the ticket-sealing key store. A sharded deployment installs
  /// one shared store into every shard so tickets are fleet-valid; the
  /// constructor-generated default store keeps a standalone server fully
  /// functional. The constructor always draws its default store from
  /// `rng` regardless, so installing a shared store does not perturb the
  /// deterministic rng stream (N=1 bit-compatibility).
  void set_ticket_keys(std::shared_ptr<TicketKeyStore> keys);
  const std::shared_ptr<TicketKeyStore>& ticket_keys() const {
    return ticket_keys_;
  }

  /// Test hook: shrinks/expands the resume-hello replay window (default
  /// kDefaultResumeReplayCapacity nonces, drop-oldest).
  void set_resume_replay_capacity(std::size_t capacity);

  static constexpr std::size_t kDefaultResumeReplayCapacity = 4096;

 private:
  struct Channel {
    ChannelKeys keys;
    std::uint64_t send_seq = 1;  // 0 was the confirm record
    std::set<std::uint64_t> seen_client_seqs;
    // Reused seal/open scratch: steady-state records don't allocate.
    Bytes seal_scratch;
    Bytes open_scratch;
  };

  void handle_resume_hello(storage::BufReader& r,
                           std::function<void(Bytes)>& respond);

  crypto::X25519KeyPair static_keys_;
  RandomSource& rng_;
  PlainHandler handler_;
  std::map<std::uint64_t, Channel> channels_;
  std::uint64_t next_channel_id_ = 1;
  SecureServerStats stats_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::shared_ptr<TicketKeyStore> ticket_keys_;
  ReplayWindow resume_window_{kDefaultResumeReplayCapacity};
};

/// Client side: performs the pinned-key handshake lazily on the first
/// request and then seals every request / opens every response.
class SecureClient {
 public:
  /// One wire round-trip: sends a request body, eventually delivers the
  /// response body (or a transport failure). The channel protocol above it
  /// is byte-identical whether the function wraps a simnet Node RPC or a
  /// net::RpcClient over real TCP.
  using WireFn = std::function<void(Bytes, std::function<void(Result<Bytes>)>)>;

  /// Transport-agnostic constructor: the secure channel runs over any
  /// request/response wire.
  SecureClient(WireFn wire, crypto::X25519Key pinned_server_key,
               RandomSource& rng);

  /// Convenience for the simulated backend: wraps `node`'s RPC pipe to
  /// `server` (delegates to the WireFn constructor).
  SecureClient(simnet::Node& node, simnet::NodeId server,
               crypto::X25519Key pinned_server_key, RandomSource& rng,
               Micros timeout_us = simnet::Node::kDefaultTimeoutUs);

  /// Wipes the cached resumption secret.
  ~SecureClient();

  /// Sends `plaintext` as one sealed request; `cb` gets the decrypted
  /// response, Err::kVerificationFailed on a tampered/forged reply, or the
  /// transport failure.
  void request(Bytes plaintext, std::function<void(Result<Bytes>)> cb);

  bool established() const { return channel_.has_value(); }

  /// Drops the channel. Ticket-preserving: if the last session minted a
  /// ticket the next request resumes (one round trip, no X25519) instead
  /// of paying a full handshake. Call forget_ticket() first to force the
  /// full exchange.
  void reset();

  /// Repoints the channel at a different wire (cluster failover: the
  /// browser retargets from the crashed primary to the promoted
  /// follower). Implies reset(); the cached ticket survives, so a fleet
  /// sharing one TicketKeyStore resumes on the new server in one round
  /// trip.
  void set_wire(WireFn wire);

  /// Simnet convenience for set_wire: retargets at `server` via `node`'s
  /// RPC pipe.
  void retarget(simnet::Node& node, simnet::NodeId server,
                Micros timeout_us = simnet::Node::kDefaultTimeoutUs);

  /// A client-cached resumption credential: the opaque server-sealed
  /// ticket plus the client's matching secret. Copyable so a connection
  /// pool can seed new clients from a shared cache; the secret is wiped
  /// on destruction.
  struct SessionTicket {
    Bytes ticket;
    Bytes secret;

    SessionTicket() = default;
    SessionTicket(const SessionTicket&) = default;
    SessionTicket& operator=(const SessionTicket&) = default;
    SessionTicket(SessionTicket&&) noexcept = default;
    SessionTicket& operator=(SessionTicket&&) noexcept = default;
    ~SessionTicket() { secure_wipe(secret); }
  };

  bool has_ticket() const {
    return !ticket_.empty() && !resumption_secret_.empty();
  }

  /// Snapshot of the current resumption credential, if any. Another
  /// SecureClient against the same fleet can adopt_ticket() it and resume
  /// without ever having handshaken itself (tickets are bearer tokens
  /// scoped to the securechan layer, exactly like TLS 1.3 PSKs).
  std::optional<SessionTicket> export_ticket() const;
  void adopt_ticket(SessionTicket t);

  /// Drops the cached ticket + secret (zeroizing the secret); the next
  /// handshake is a full X25519 exchange. For tests and the attack
  /// harness.
  void forget_ticket();

  /// Records client-observed handshake round-trip latency into
  /// `securechan.handshake_latency_us` (virtual time from `clock`) and
  /// counts completed handshakes. In the simulation the whole testbed
  /// shares one registry, so client-leg handshake RTTs land next to the
  /// server-side channel counters.
  void set_metrics(obs::MetricsRegistry* registry, const Clock* clock);

  /// Testing/attack hook: the live channel keys, if established. A
  /// compromised-HTTPS adversary (paper section IV-A) is granted exactly
  /// this view.
  const ChannelKeys* debug_keys() const;

 private:
  struct Established {
    std::uint64_t channel_id;
    ChannelKeys keys;
    std::uint64_t send_seq = 0;
    std::set<std::uint64_t> seen_server_seqs;
    // Reused seal/open scratch: steady-state records don't allocate.
    Bytes seal_scratch;
    Bytes open_scratch;
  };

  void start_handshake();
  void start_full_handshake();
  void start_resume();
  void install_session(std::uint64_t channel_id, SessionSecrets secrets,
                       Bytes ticket);
  void flush_queue();
  void send_record(Bytes plaintext, std::string trace,
                   std::function<void(Result<Bytes>)> cb);

  WireFn wire_;
  crypto::X25519Key pinned_server_key_;
  RandomSource& rng_;
  std::optional<Established> channel_;
  bool handshake_in_flight_ = false;
  obs::MetricsRegistry* metrics_ = nullptr;
  const Clock* metrics_clock_ = nullptr;
  // Requests issued before the handshake completes. The trace context is
  // captured at request() time: by the time the handshake completes and
  // the queue flushes, the caller's ambient context is gone.
  std::deque<std::tuple<Bytes, std::string, std::function<void(Result<Bytes>)>>>
      queue_;
  // Handshake state while in flight.
  Bytes pending_eph_private_;
  Bytes pending_client_nonce_;
  Micros handshake_started_us_ = 0;
  // Cached resumption credential (see SessionTicket). Lives outside
  // channel_ so reset() keeps it across sessions.
  Bytes ticket_;
  Bytes resumption_secret_;
};

}  // namespace amnesia::securechan
