// Session tickets: stateless secure-channel resumption (TLS 1.3 style).
//
// On full-handshake completion the server hands the client an opaque
// *ticket*: the session's resumption master secret sealed under a
// process-wide ticket key the client never sees. To resume, the client
// returns the ticket plus a fresh nonce; any server process holding the
// ticket key — any shard of the fleet, since the key is installed into
// every shard at startup — recovers the secret and derives fresh channel
// keys with zero X25519 scalar multiplications and one round trip.
//
// Ticket wire format (opaque to the client, versioned by the AAD):
//   key_id(8 LE) nonce(12) sealed( rms(32) || tag(16) )
//
// Key management is two-slot rotation: `rotate()` demotes the current key
// to "previous" and installs a fresh one. `open()` accepts tickets sealed
// under either slot, so an outstanding ticket survives exactly one
// rotation period before it silently falls back to a full handshake —
// rotation, not wall-clock timestamps, is the expiry mechanism (the
// secure channel deliberately has no clock).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <set>

#include "common/bytes.h"
#include "common/rng.h"

namespace amnesia::securechan {

/// Length of the resumption master secret carried inside a ticket.
constexpr std::size_t kResumptionSecretLen = 32;

/// Process-wide rotating ticket-sealing key. One store is shared (by
/// `shared_ptr`) across every shard's SecureServer, which is what makes
/// resumption shard-agnostic: a ticket minted by shard k opens on shard j
/// with no cross-shard traffic. seal/open/rotate are mutex-guarded — the
/// store is the only securechan state touched from multiple reactor
/// threads.
class TicketKeyStore {
 public:
  static std::shared_ptr<TicketKeyStore> generate(RandomSource& rng);

  /// Keys are zeroized before the memory is released.
  ~TicketKeyStore();

  TicketKeyStore(const TicketKeyStore&) = delete;
  TicketKeyStore& operator=(const TicketKeyStore&) = delete;

  /// Seals `resumption_secret` (must be kResumptionSecretLen bytes) into
  /// an opaque ticket under the current key.
  Bytes seal(ByteView resumption_secret, RandomSource& rng) const;

  /// Opens a ticket sealed under the current or the previous key. Returns
  /// the resumption secret, or nullopt for anything else: truncated or
  /// trailing-garbage encodings, unknown/rotated-out key ids, or a failed
  /// tag check. Never throws on hostile bytes.
  std::optional<Bytes> open(ByteView ticket) const;

  /// Demotes the current key to the "previous" slot (wiping the key that
  /// falls off the end) and installs a fresh key.
  void rotate(RandomSource& rng);

  std::uint64_t current_key_id() const;

 private:
  TicketKeyStore() = default;

  mutable std::mutex mu_;
  std::uint64_t current_id_ = 1;
  Bytes current_key_;
  Bytes previous_key_;  // empty until the first rotation
};

/// Bounded sliding replay window over resume-hello client nonces:
/// insert() returns false on a repeat, and once `capacity` distinct
/// nonces are held the oldest is dropped to admit the next. Per-shard
/// and single-threaded (each reactor owns its own window).
class ReplayWindow {
 public:
  explicit ReplayWindow(std::size_t capacity) : capacity_(capacity) {}

  /// True if `nonce` was not in the window (and is now); false on replay.
  bool insert(const Bytes& nonce);

  std::size_t size() const { return order_.size(); }
  std::size_t capacity() const { return capacity_; }
  void set_capacity(std::size_t capacity);

 private:
  std::size_t capacity_;
  std::set<Bytes> seen_;
  std::deque<Bytes> order_;  // insertion order, front = oldest
};

}  // namespace amnesia::securechan
