#include "securechan/ticket.h"

#include "common/error.h"
#include "crypto/aead.h"
#include "storage/codec.h"

namespace amnesia::securechan {

namespace {

// Version tag: baked into the AAD, so a future v2 ticket format fails the
// tag check here instead of parsing ambiguously.
const char kTicketAad[] = "amnesia ticket v1";

ByteView ticket_aad() {
  return ByteView(reinterpret_cast<const std::uint8_t*>(kTicketAad),
                  sizeof(kTicketAad) - 1);
}

}  // namespace

std::shared_ptr<TicketKeyStore> TicketKeyStore::generate(RandomSource& rng) {
  std::shared_ptr<TicketKeyStore> store(new TicketKeyStore());
  store->current_key_ = rng.bytes(crypto::kAeadKeySize);
  return store;
}

TicketKeyStore::~TicketKeyStore() {
  secure_wipe(current_key_);
  secure_wipe(previous_key_);
}

Bytes TicketKeyStore::seal(ByteView resumption_secret,
                           RandomSource& rng) const {
  if (resumption_secret.size() != kResumptionSecretLen) {
    throw CryptoError("ticket: resumption secret must be 32 bytes");
  }
  const Bytes nonce = rng.bytes(crypto::kAeadNonceSize);
  std::lock_guard<std::mutex> lock(mu_);
  storage::BufWriter w;
  w.u64(current_id_);
  w.raw(nonce);
  w.bytes(crypto::aead_seal(current_key_, nonce, ticket_aad(),
                            resumption_secret));
  return w.take();
}

std::optional<Bytes> TicketKeyStore::open(ByteView ticket) const {
  try {
    storage::BufReader r(ticket);
    const std::uint64_t key_id = r.u64();
    Bytes nonce;
    nonce.reserve(crypto::kAeadNonceSize);
    for (std::size_t i = 0; i < crypto::kAeadNonceSize; ++i) {
      nonce.push_back(r.u8());
    }
    const Bytes sealed = r.bytes();
    if (!r.done()) return std::nullopt;  // trailing bytes: not ours

    std::lock_guard<std::mutex> lock(mu_);
    const Bytes* key = nullptr;
    if (key_id == current_id_) {
      key = &current_key_;
    } else if (key_id + 1 == current_id_ && !previous_key_.empty()) {
      key = &previous_key_;
    } else {
      return std::nullopt;  // rotated out (or from the future)
    }
    auto secret = crypto::aead_open(*key, nonce, ticket_aad(), sealed);
    if (!secret || secret->size() != kResumptionSecretLen) {
      return std::nullopt;
    }
    return secret;
  } catch (const FormatError&) {
    return std::nullopt;  // truncated / hostile encoding
  }
}

void TicketKeyStore::rotate(RandomSource& rng) {
  Bytes fresh = rng.bytes(crypto::kAeadKeySize);
  std::lock_guard<std::mutex> lock(mu_);
  secure_wipe(previous_key_);
  previous_key_ = std::move(current_key_);
  current_key_ = std::move(fresh);
  ++current_id_;
}

std::uint64_t TicketKeyStore::current_key_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_id_;
}

bool ReplayWindow::insert(const Bytes& nonce) {
  if (capacity_ == 0) return true;  // window disabled: nothing to remember
  if (!seen_.insert(nonce).second) return false;
  order_.push_back(nonce);
  while (order_.size() > capacity_) {
    seen_.erase(order_.front());
    order_.pop_front();
  }
  return true;
}

void ReplayWindow::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  while (order_.size() > capacity_) {
    seen_.erase(order_.front());
    order_.pop_front();
  }
}

}  // namespace amnesia::securechan
