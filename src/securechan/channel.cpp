#include "securechan/channel.h"

#include <algorithm>
#include <array>

#include "common/error.h"
#include "common/logging.h"
#include "crypto/aead.h"
#include "crypto/hkdf.h"
#include "resilience/fault.h"
#include "storage/codec.h"

namespace amnesia::securechan {

namespace {

constexpr std::uint8_t kClientHello = 0x01;
constexpr std::uint8_t kServerHello = 0x02;
constexpr std::uint8_t kData = 0x03;
constexpr std::uint8_t kResumeHello = 0x04;
constexpr std::uint8_t kResumeOk = 0x05;
constexpr std::uint8_t kResumeReject = 0x06;

constexpr std::size_t kNonceLen = 16;
const char kKdfInfo[] = "amnesia securechan v1";
const char kResumeKdfInfo[] = "amnesia securechan resume v1";
const char kConfirmPayload[] = "amnesia key confirm";

// 0: client->server, 1: server->client. Stack-built, but byte-identical
// to BufWriter{u8(direction), u64(channel_id)} from earlier versions.
std::array<std::uint8_t, 9> direction_aad(std::uint8_t direction,
                                          std::uint64_t channel_id) {
  std::array<std::uint8_t, 9> aad;
  aad[0] = direction;
  for (int i = 0; i < 8; ++i) {
    aad[1 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(channel_id >> (i * 8));
  }
  return aad;
}

}  // namespace

void ChannelKeys::wipe() {
  secure_wipe(client_to_server_key);
  secure_wipe(server_to_client_key);
  secure_wipe(client_to_server_iv);
  secure_wipe(server_to_client_iv);
}

ChannelKeys& ChannelKeys::operator=(ChannelKeys&& other) noexcept {
  if (this != &other) {
    wipe();
    client_to_server_key = std::move(other.client_to_server_key);
    server_to_client_key = std::move(other.server_to_client_key);
    client_to_server_iv = std::move(other.client_to_server_iv);
    server_to_client_iv = std::move(other.server_to_client_iv);
  }
  return *this;
}

namespace {

// Shared schedule layout: 88 bytes of record keys/IVs followed by the
// 32-byte resumption master secret for the *next* session's ticket.
SessionSecrets derive_session(ByteView ikm, ByteView client_nonce,
                              ByteView server_nonce, const char* info) {
  const Bytes salt = concat({client_nonce, server_nonce});
  Bytes okm = crypto::hkdf(salt, ikm, to_bytes(std::string(info)),
                           88 + kResumptionSecretLen);
  SessionSecrets s;
  s.keys.client_to_server_key.assign(okm.begin(), okm.begin() + 32);
  s.keys.server_to_client_key.assign(okm.begin() + 32, okm.begin() + 64);
  s.keys.client_to_server_iv.assign(okm.begin() + 64, okm.begin() + 76);
  s.keys.server_to_client_iv.assign(okm.begin() + 76, okm.begin() + 88);
  s.resumption_secret.assign(okm.begin() + 88,
                             okm.begin() + 88 + kResumptionSecretLen);
  secure_wipe(okm);
  return s;
}

}  // namespace

SessionSecrets derive_full_session(ByteView shared_secret,
                                   ByteView client_nonce,
                                   ByteView server_nonce) {
  return derive_session(shared_secret, client_nonce, server_nonce, kKdfInfo);
}

SessionSecrets derive_resumed_session(ByteView resumption_secret,
                                      ByteView client_nonce,
                                      ByteView server_nonce) {
  return derive_session(resumption_secret, client_nonce, server_nonce,
                        kResumeKdfInfo);
}

ChannelKeys derive_keys(ByteView shared_secret, ByteView client_nonce,
                        ByteView server_nonce) {
  // HKDF-Expand output is prefix-stable, so taking the record keys from
  // the extended schedule is bit-identical to the original 88-byte call.
  SessionSecrets s =
      derive_full_session(shared_secret, client_nonce, server_nonce);
  return std::move(s.keys);
}

namespace {

std::array<std::uint8_t, crypto::kAeadNonceSize> seq_nonce(const Bytes& iv,
                                                           std::uint64_t seq) {
  if (iv.size() != crypto::kAeadNonceSize) {
    throw CryptoError("securechan: record IV must be 12 bytes");
  }
  std::array<std::uint8_t, crypto::kAeadNonceSize> nonce;
  std::copy(iv.begin(), iv.end(), nonce.begin());
  for (int i = 0; i < 8; ++i) {
    nonce[4 + static_cast<std::size_t>(i)] ^=
        static_cast<std::uint8_t>(seq >> ((7 - i) * 8));
  }
  return nonce;
}

}  // namespace

void seal_record_into(const Bytes& key, const Bytes& iv, std::uint64_t seq,
                      ByteView aad, ByteView plaintext, Bytes& out) {
  const auto nonce = seq_nonce(iv, seq);
  crypto::aead_seal_into(key, ByteView(nonce.data(), nonce.size()), aad,
                         plaintext, out);
}

bool open_record_into(const Bytes& key, const Bytes& iv, std::uint64_t seq,
                      ByteView aad, ByteView sealed, Bytes& out) {
  const auto nonce = seq_nonce(iv, seq);
  return crypto::aead_open_into(key, ByteView(nonce.data(), nonce.size()), aad,
                                sealed, out);
}

Bytes seal_record(const Bytes& key, const Bytes& iv, std::uint64_t seq,
                  ByteView aad, ByteView plaintext) {
  Bytes out;
  seal_record_into(key, iv, seq, aad, plaintext, out);
  return out;
}

std::optional<Bytes> open_record(const Bytes& key, const Bytes& iv,
                                 std::uint64_t seq, ByteView aad,
                                 ByteView sealed) {
  Bytes out;
  if (!open_record_into(key, iv, seq, aad, sealed, out)) return std::nullopt;
  return out;
}

// ---------------------------------------------------------------- server

SecureServer::SecureServer(crypto::X25519KeyPair static_keys,
                           RandomSource& rng)
    : static_keys_(static_keys), rng_(rng) {
  // Always generated — even when a sharded deployment immediately
  // replaces it via set_ticket_keys — so the rng stream consumed by this
  // constructor is identical in every configuration (the N=1 shard must
  // stay bit-compatible with the plain testbed).
  ticket_keys_ = TicketKeyStore::generate(rng_);
}

void SecureServer::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
}

void SecureServer::set_ticket_keys(std::shared_ptr<TicketKeyStore> keys) {
  if (keys) ticket_keys_ = std::move(keys);
}

void SecureServer::set_resume_replay_capacity(std::size_t capacity) {
  resume_window_.set_capacity(capacity);
}

void SecureServer::bind(simnet::Node& node) {
  node.set_rpc_handler([this](const simnet::NodeId& /*from*/,
                              const Bytes& body,
                              std::function<void(Bytes)> respond) {
    handle_wire(body, std::move(respond));
  });
}

void SecureServer::handle_wire(const Bytes& wire,
                               std::function<void(Bytes)> respond) {
  if (metrics_) {
    metrics_->counter("securechan.bytes_in")
        .inc(static_cast<std::uint64_t>(wire.size()));
  }
  if (wire.empty()) {
    ++stats_.records_rejected;
    if (metrics_) metrics_->counter("securechan.records_rejected").inc();
    return;  // silent drop, like a TLS terminator on garbage
  }
  storage::BufReader r(wire);
  std::uint8_t type = 0;
  try {
    type = r.u8();
    if (type == kClientHello) {
      Bytes eph_pub;
      eph_pub.reserve(32);
      for (int i = 0; i < 32; ++i) eph_pub.push_back(r.u8());
      Bytes client_nonce;
      for (std::size_t i = 0; i < kNonceLen; ++i) client_nonce.push_back(r.u8());

      const auto shared = crypto::x25519(static_keys_.private_key, eph_pub);
      const Bytes server_nonce = rng_.bytes(kNonceLen);
      const std::uint64_t channel_id = next_channel_id_++;
      SessionSecrets secrets =
          derive_full_session(ByteView(shared.data(), shared.size()),
                              client_nonce, server_nonce);
      Channel chan;
      chan.keys = std::move(secrets.keys);

      // Key confirmation: record seq 0 in the server->client direction.
      seal_record_into(chan.keys.server_to_client_key,
                       chan.keys.server_to_client_iv, 0,
                       direction_aad(1, channel_id),
                       to_bytes(std::string(kConfirmPayload)),
                       chan.seal_scratch);

      storage::BufWriter w;
      w.u8(kServerHello);
      for (std::uint8_t b : server_nonce) w.u8(b);
      w.u64(channel_id);
      w.bytes(chan.seal_scratch);
      // Trailing ticket: pre-resumption clients never look past the
      // confirm record, so this extension is wire-compatible.
      w.bytes(ticket_keys_->seal(secrets.resumption_secret, rng_));
      ++stats_.tickets_issued;
      channels_.emplace(channel_id, std::move(chan));
      ++stats_.handshakes;
      Bytes hello = w.take();
      if (metrics_) {
        metrics_->counter("securechan.handshakes").inc();
        metrics_->counter("securechan.tickets_issued").inc();
        metrics_->counter("securechan.records_sealed").inc();
        metrics_->counter("securechan.bytes_out")
            .inc(static_cast<std::uint64_t>(hello.size()));
      }
      respond(std::move(hello));
      return;
    }
    if (type == kResumeHello) {
      handle_resume_hello(r, respond);
      return;
    }
    if (type == kData) {
      const std::uint64_t channel_id = r.u64();
      const std::uint64_t seq = r.u64();
      const Bytes sealed = r.bytes();
      // Optional plaintext trace slot; malformed trailing bytes throw
      // FormatError here and reject the whole record below.
      std::string trace;
      if (!r.done()) trace = r.str();
      const auto it = channels_.find(channel_id);
      if (it == channels_.end()) {
        ++stats_.records_rejected;
        if (metrics_) metrics_->counter("securechan.records_rejected").inc();
        return;
      }
      Channel& chan = it->second;
      if (!chan.seen_client_seqs.insert(seq).second) {
        ++stats_.replays_rejected;
        if (metrics_) metrics_->counter("securechan.replays_rejected").inc();
        return;
      }
      if (!open_record_into(chan.keys.client_to_server_key,
                            chan.keys.client_to_server_iv, seq,
                            direction_aad(0, channel_id), sealed,
                            chan.open_scratch)) {
        ++stats_.records_rejected;
        if (metrics_) metrics_->counter("securechan.records_rejected").inc();
        return;
      }
      ++stats_.records_opened;
      if (metrics_) metrics_->counter("securechan.records_opened").inc();
      if (!handler_) return;
      const std::uint64_t channel_id_copy = channel_id;
      // A parseable trace slot becomes the ambient context for the
      // dispatch; a bogus one is dropped and never echoed back.
      obs::TraceContext remote;
      std::string canonical_trace;
      if (const auto parsed = obs::parse_trace_header(trace)) {
        remote = *parsed;
        canonical_trace = obs::format_trace_header(remote);
      }
      const obs::ScopedTrace scope(remote);
      handler_(chan.open_scratch,
               [this, channel_id_copy, canonical_trace,
                respond = std::move(respond)](Bytes reply) {
        const auto chan_it = channels_.find(channel_id_copy);
        if (chan_it == channels_.end()) return;  // channel torn down
        Channel& c = chan_it->second;
        const std::uint64_t reply_seq = c.send_seq++;
        seal_record_into(c.keys.server_to_client_key,
                         c.keys.server_to_client_iv, reply_seq,
                         direction_aad(1, channel_id_copy), reply,
                         c.seal_scratch);
        storage::BufWriter w;
        w.u8(kData);
        w.u64(channel_id_copy);
        w.u64(reply_seq);
        w.bytes(c.seal_scratch);
        if (!canonical_trace.empty()) w.str(canonical_trace);
        Bytes out = w.take();
        if (metrics_) {
          metrics_->counter("securechan.records_sealed").inc();
          metrics_->counter("securechan.bytes_out")
              .inc(static_cast<std::uint64_t>(out.size()));
        }
        respond(std::move(out));
      });
      return;
    }
  } catch (const FormatError&) {
    // fall through to reject
  }
  ++stats_.records_rejected;
  if (metrics_) metrics_->counter("securechan.records_rejected").inc();
}

void SecureServer::handle_resume_hello(storage::BufReader& r,
                                       std::function<void(Bytes)>& respond) {
  // Every rejection answers a 1-byte kResumeReject (never echoing any
  // attacker-controlled bytes) so an honest client with a stale ticket
  // falls back to a full handshake in one round trip instead of a
  // timeout. A hostile sender learns only "no".
  auto reject = [&] {
    ++stats_.resumptions_rejected;
    if (metrics_) {
      metrics_->counter("securechan.resumptions_rejected").inc();
    }
    Bytes nack{kResumeReject};
    if (metrics_) {
      metrics_->counter("securechan.bytes_out")
          .inc(static_cast<std::uint64_t>(nack.size()));
    }
    respond(std::move(nack));
  };

  Bytes ticket;
  Bytes client_nonce;
  try {
    ticket = r.bytes();
    for (std::size_t i = 0; i < kNonceLen; ++i) client_nonce.push_back(r.u8());
    if (!r.done()) throw FormatError("trailing bytes in resume hello");
  } catch (const FormatError&) {
    reject();
    return;
  }

  // Fault point for the resilience harness: a fired fault makes the
  // server refuse resumption (kDrop: silently, every other kind: with a
  // reject), exercising the client's transparent full-handshake fallback.
  if (auto f = resilience::fault_check("securechan.resume")) {
    if (f->kind == resilience::FaultKind::kDrop) return;
    reject();
    return;
  }

  auto rms = ticket_keys_->open(ticket);
  if (!rms) {
    reject();
    return;
  }
  if (!resume_window_.insert(client_nonce)) {
    ++stats_.resume_replays_rejected;
    if (metrics_) {
      metrics_->counter("securechan.resume_replays_rejected").inc();
    }
    reject();
    return;
  }

  const Bytes server_nonce = rng_.bytes(kNonceLen);
  const std::uint64_t channel_id = next_channel_id_++;
  SessionSecrets secrets =
      derive_resumed_session(*rms, client_nonce, server_nonce);
  secure_wipe(*rms);
  Channel chan;
  chan.keys = std::move(secrets.keys);

  // Same key-confirmation discipline as the full handshake: only a
  // holder of the ticket key (i.e. the real fleet) can derive these keys.
  seal_record_into(chan.keys.server_to_client_key,
                   chan.keys.server_to_client_iv, 0,
                   direction_aad(1, channel_id),
                   to_bytes(std::string(kConfirmPayload)), chan.seal_scratch);

  storage::BufWriter w;
  w.u8(kResumeOk);
  w.raw(server_nonce);
  w.u64(channel_id);
  w.bytes(chan.seal_scratch);
  // Ticket chaining: every resumed session mints a successor ticket
  // under a successor secret, so one stolen ticket never replays into
  // more than the replay window already allows.
  w.bytes(ticket_keys_->seal(secrets.resumption_secret, rng_));
  ++stats_.tickets_issued;
  channels_.emplace(channel_id, std::move(chan));
  ++stats_.resumptions;
  Bytes ok = w.take();
  if (metrics_) {
    metrics_->counter("securechan.resumptions").inc();
    metrics_->counter("securechan.tickets_issued").inc();
    metrics_->counter("securechan.records_sealed").inc();
    metrics_->counter("securechan.bytes_out")
        .inc(static_cast<std::uint64_t>(ok.size()));
  }
  respond(std::move(ok));
}

// ---------------------------------------------------------------- client

SecureClient::SecureClient(WireFn wire, crypto::X25519Key pinned_server_key,
                           RandomSource& rng)
    : wire_(std::move(wire)),
      pinned_server_key_(pinned_server_key),
      rng_(rng) {}

SecureClient::SecureClient(simnet::Node& node, simnet::NodeId server,
                           crypto::X25519Key pinned_server_key,
                           RandomSource& rng, Micros timeout_us)
    : SecureClient(
          [&node, server = std::move(server), timeout_us](
              Bytes body, std::function<void(Result<Bytes>)> cb) {
            node.request(server, std::move(body), std::move(cb), timeout_us);
          },
          pinned_server_key, rng) {}

SecureClient::~SecureClient() {
  secure_wipe(resumption_secret_);
  secure_wipe(pending_eph_private_);
}

void SecureClient::reset() {
  // Ticket-preserving: ticket_ / resumption_secret_ survive, so the next
  // request resumes instead of re-running X25519 (forget_ticket() forces
  // the full exchange).
  channel_.reset();
  handshake_in_flight_ = false;
}

void SecureClient::set_wire(WireFn wire) {
  wire_ = std::move(wire);
  reset();
}

void SecureClient::retarget(simnet::Node& node, simnet::NodeId server,
                            Micros timeout_us) {
  set_wire([&node, server = std::move(server), timeout_us](
               Bytes body, std::function<void(Result<Bytes>)> cb) {
    node.request(server, std::move(body), std::move(cb), timeout_us);
  });
}

std::optional<SecureClient::SessionTicket> SecureClient::export_ticket()
    const {
  if (!has_ticket()) return std::nullopt;
  SessionTicket t;
  t.ticket = ticket_;
  t.secret = resumption_secret_;
  return t;
}

void SecureClient::adopt_ticket(SessionTicket t) {
  forget_ticket();
  ticket_ = std::move(t.ticket);
  resumption_secret_ = std::move(t.secret);
}

void SecureClient::forget_ticket() {
  secure_wipe(resumption_secret_);
  ticket_.clear();
}

void SecureClient::set_metrics(obs::MetricsRegistry* registry,
                               const Clock* clock) {
  metrics_ = registry;
  metrics_clock_ = clock;
}

const ChannelKeys* SecureClient::debug_keys() const {
  return channel_ ? &channel_->keys : nullptr;
}

void SecureClient::request(Bytes plaintext,
                           std::function<void(Result<Bytes>)> cb) {
  // Capture the ambient trace context now: a queued request is flushed
  // from the handshake callback, where the caller's context is gone.
  std::string trace;
  if (const obs::TraceContext ctx = obs::current_trace(); ctx.valid()) {
    trace = obs::format_trace_header(ctx);
  }
  if (!channel_) {
    queue_.emplace_back(std::move(plaintext), std::move(trace), std::move(cb));
    if (!handshake_in_flight_) start_handshake();
    return;
  }
  send_record(std::move(plaintext), std::move(trace), std::move(cb));
}

void SecureClient::send_record(Bytes plaintext, std::string trace,
                               std::function<void(Result<Bytes>)> cb) {
  Established& chan = *channel_;
  const std::uint64_t seq = chan.send_seq++;
  seal_record_into(chan.keys.client_to_server_key,
                   chan.keys.client_to_server_iv, seq,
                   direction_aad(0, chan.channel_id), plaintext,
                   chan.seal_scratch);
  if (metrics_) metrics_->counter("securechan.records_sealed").inc();
  storage::BufWriter w;
  w.u8(kData);
  w.u64(chan.channel_id);
  w.u64(seq);
  w.bytes(chan.seal_scratch);
  if (!trace.empty()) w.str(trace);

  wire_(
      w.take(),
      [this, cb = std::move(cb)](Result<Bytes> wire) {
        if (!wire.ok()) {
          cb(Result<Bytes>(wire.failure()));
          return;
        }
        if (!channel_) {
          cb(Result<Bytes>(Err::kInternal, "channel was reset"));
          return;
        }
        try {
          storage::BufReader r(wire.value());
          if (r.u8() != kData) throw FormatError("not a data record");
          const std::uint64_t channel_id = r.u64();
          const std::uint64_t seq = r.u64();
          const Bytes sealed = r.bytes();
          if (channel_id != channel_->channel_id) {
            throw FormatError("wrong channel id");
          }
          if (!channel_->seen_server_seqs.insert(seq).second) {
            cb(Result<Bytes>(Err::kVerificationFailed, "replayed record"));
            return;
          }
          if (!open_record_into(channel_->keys.server_to_client_key,
                                channel_->keys.server_to_client_iv, seq,
                                direction_aad(1, channel_id), sealed,
                                channel_->open_scratch)) {
            cb(Result<Bytes>(Err::kVerificationFailed,
                             "record authentication failed"));
            return;
          }
          cb(Result<Bytes>(channel_->open_scratch));
        } catch (const FormatError& e) {
          cb(Result<Bytes>(Err::kVerificationFailed,
                           std::string("malformed record: ") + e.what()));
        }
      });
}

void SecureClient::start_handshake() {
  handshake_in_flight_ = true;
  if (has_ticket()) {
    start_resume();
  } else {
    start_full_handshake();
  }
}

void SecureClient::install_session(std::uint64_t channel_id,
                                   SessionSecrets secrets, Bytes ticket) {
  Established est;
  est.channel_id = channel_id;
  est.keys = std::move(secrets.keys);
  est.seen_server_seqs.insert(0);  // the confirm record
  channel_ = std::move(est);
  handshake_in_flight_ = false;
  secure_wipe(resumption_secret_);
  resumption_secret_ = std::move(secrets.resumption_secret);
  ticket_ = std::move(ticket);
  flush_queue();
}

void SecureClient::start_resume() {
  handshake_started_us_ = metrics_clock_ ? metrics_clock_->now_us() : 0;
  pending_client_nonce_ = rng_.bytes(kNonceLen);

  storage::BufWriter w;
  w.u8(kResumeHello);
  w.bytes(ticket_);
  w.raw(pending_client_nonce_);

  wire_(
      w.take(),
      [this](Result<Bytes> wire) {
        // Resumption is an optimistic fast path: *any* failure —
        // transport error, server reject, malformed or unverifiable
        // reply — burns the ticket and falls back to one full handshake.
        // Queued requests never observe the attempt.
        auto fall_back = [this] {
          forget_ticket();
          if (metrics_) {
            metrics_->counter("securechan.client_resumptions_rejected").inc();
          }
          start_full_handshake();
        };
        if (!wire.ok()) {
          fall_back();
          return;
        }
        try {
          storage::BufReader r(wire.value());
          if (r.u8() != kResumeOk) {
            fall_back();  // kResumeReject, or something else entirely
            return;
          }
          Bytes server_nonce;
          for (std::size_t i = 0; i < kNonceLen; ++i) {
            server_nonce.push_back(r.u8());
          }
          const std::uint64_t channel_id = r.u64();
          const Bytes confirm = r.bytes();
          Bytes next_ticket;
          if (!r.done()) next_ticket = r.bytes();

          SessionSecrets secrets = derive_resumed_session(
              resumption_secret_, pending_client_nonce_, server_nonce);
          const auto confirm_plain = open_record(
              secrets.keys.server_to_client_key,
              secrets.keys.server_to_client_iv, 0,
              direction_aad(1, channel_id), confirm);
          if (!confirm_plain || to_string(*confirm_plain) != kConfirmPayload) {
            // Whoever answered could not derive the resumed keys.
            fall_back();
            return;
          }
          if (metrics_) {
            metrics_->counter("securechan.client_resumptions").inc();
            if (metrics_clock_) {
              const Micros rtt =
                  metrics_clock_->now_us() - handshake_started_us_;
              metrics_->histogram("securechan.handshake_latency_us")
                  .record(rtt);
              metrics_->histogram("securechan.handshake_latency_us.resumed")
                  .record(rtt);
            }
          }
          install_session(channel_id, std::move(secrets),
                          std::move(next_ticket));
        } catch (const FormatError&) {
          fall_back();
        }
      });
}

void SecureClient::start_full_handshake() {
  handshake_started_us_ = metrics_clock_ ? metrics_clock_->now_us() : 0;
  const auto eph = crypto::x25519_generate(rng_);
  pending_eph_private_.assign(eph.private_key.begin(), eph.private_key.end());
  pending_client_nonce_ = rng_.bytes(kNonceLen);

  storage::BufWriter w;
  w.u8(kClientHello);
  for (std::uint8_t b : eph.public_key) w.u8(b);
  for (std::uint8_t b : pending_client_nonce_) w.u8(b);

  wire_(
      w.take(),
      [this](Result<Bytes> wire) {
        handshake_in_flight_ = false;
        auto fail_all = [this](Err code, const std::string& msg) {
          auto queue = std::move(queue_);
          queue_.clear();
          for (auto& [payload, trace, cb] : queue) {
            cb(Result<Bytes>(code, msg));
          }
        };
        if (!wire.ok()) {
          fail_all(wire.failure().code, wire.failure().message);
          return;
        }
        try {
          storage::BufReader r(wire.value());
          if (r.u8() != kServerHello) throw FormatError("not a server hello");
          Bytes server_nonce;
          for (std::size_t i = 0; i < kNonceLen; ++i) {
            server_nonce.push_back(r.u8());
          }
          const std::uint64_t channel_id = r.u64();
          const Bytes confirm = r.bytes();
          Bytes ticket;
          if (!r.done()) ticket = r.bytes();

          const auto shared = crypto::x25519(
              pending_eph_private_,
              ByteView(pinned_server_key_.data(), pinned_server_key_.size()));
          SessionSecrets secrets =
              derive_full_session(ByteView(shared.data(), shared.size()),
                                  pending_client_nonce_, server_nonce);
          const auto confirm_plain = open_record(
              secrets.keys.server_to_client_key,
              secrets.keys.server_to_client_iv, 0,
              direction_aad(1, channel_id), confirm);
          if (!confirm_plain ||
              to_string(*confirm_plain) != kConfirmPayload) {
            // Whoever answered does not hold the pinned static key.
            fail_all(Err::kVerificationFailed,
                     "server key confirmation failed (pinned key mismatch)");
            return;
          }
          secure_wipe(pending_eph_private_);
          if (metrics_) {
            metrics_->counter("securechan.client_handshakes").inc();
            if (metrics_clock_) {
              const Micros rtt =
                  metrics_clock_->now_us() - handshake_started_us_;
              metrics_->histogram("securechan.handshake_latency_us")
                  .record(rtt);
              metrics_->histogram("securechan.handshake_latency_us.cold")
                  .record(rtt);
            }
          }
          install_session(channel_id, std::move(secrets), std::move(ticket));
        } catch (const FormatError& e) {
          fail_all(Err::kVerificationFailed,
                   std::string("malformed server hello: ") + e.what());
        }
      });
}

void SecureClient::flush_queue() {
  auto queue = std::move(queue_);
  queue_.clear();
  for (auto& [payload, trace, cb] : queue) {
    send_record(std::move(payload), std::move(trace), std::move(cb));
  }
}

}  // namespace amnesia::securechan
