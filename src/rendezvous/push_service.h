// Rendezvous push service — the Google Cloud Messaging substitute.
//
// The Amnesia server cannot reach the phone directly (the phone has no
// static address), so password requests R travel server -> rendezvous ->
// phone (paper Fig. 1 step 3). This service reproduces GCM's observable
// behaviour:
//   - devices register and receive an opaque registration id (the paper's
//     Rid, stored server-side in plaintext, Table I);
//   - senders push payloads to a registration id; the service forwards
//     them as one-way datagrams;
//   - pushes to offline devices are queued with a TTL and flushed when the
//     device reconnects (GCM store-and-forward);
//   - traffic through the service is visible to a rendezvous eavesdropper,
//     exactly the adversary of paper section IV-B.
//
// RPC ops (storage::BufWriter framing, first byte = op):
//   0x01 register   : device_node            -> ok + registration_id
//   0x02 push       : reg_id, ttl_us, blob [, trace] -> ok | unknown_id
//   0x03 connect    : reg_id                 -> ok (flushes queued pushes)
//   0x04 unregister : reg_id                 -> ok | unknown_id
//   0x05 lease_acquire : cluster_id, node, epoch, ttl_us
//                        -> status + holder + holder_epoch
//   0x06 lease_get     : cluster_id          -> ok + holder + holder_epoch
//
// The lease ops anchor the cluster layer's primary election: every replica
// already depends on the rendezvous service (it is where pushes must go),
// so it doubles as the tiny shared-arbiter a 2–3 node cluster needs —
// no external consensus service. A lease names at most one primary per
// cluster id; acquire renews for the current holder, grants on expiry,
// and grants immediately to a *higher epoch* (a promoted follower fences
// the crashed primary's epoch). See docs/CLUSTER.md.
//
// The optional trailing trace string on push is a serialized
// obs::TraceContext; the service records a "rendezvous.deliver" span under
// it covering accept-to-forward (including any store-and-forward wait).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "obs/metrics.h"
#include "simnet/node.h"

namespace amnesia::rendezvous {

struct PushStats {
  std::uint64_t registrations = 0;
  std::uint64_t pushes_accepted = 0;
  std::uint64_t pushes_delivered = 0;
  std::uint64_t pushes_queued = 0;
  std::uint64_t pushes_expired = 0;
  std::uint64_t pushes_dropped_overflow = 0;
  std::uint64_t unknown_registration = 0;
  std::uint64_t lease_grants = 0;
  std::uint64_t lease_rejections = 0;
};

/// The service process, attached to its own simnet node.
class PushService {
 public:
  PushService(simnet::Network& network, simnet::NodeId node_id,
              RandomSource& rng);

  const simnet::NodeId& node_id() const { return node_->id(); }
  const PushStats& stats() const { return stats_; }

  /// Expires queued messages whose TTL has passed (called internally on
  /// every touch; exposed for tests).
  void reap_expired();

  /// Publishes push.* counters mirroring PushStats plus
  /// push.delivery_latency_us, the accept-to-forward delay in virtual time
  /// (zero for online devices, the store-and-forward wait otherwise).
  void set_metrics(obs::MetricsRegistry* registry);

  /// Caps the store-and-forward queue per registration (drop-oldest on
  /// overflow, counted as pushes_dropped_overflow). GCM does the same:
  /// offline devices get a bounded backlog, not an unbounded one.
  void set_max_queue_per_device(std::size_t n) { max_queue_per_device_ = n; }

 private:
  struct QueuedPush {
    Bytes payload;
    Micros expires_at;
    Micros queued_at;
    // Open "rendezvous.deliver" span covering the store-and-forward wait;
    // invalid when the push arrived untraced.
    obs::TraceContext trace;
  };
  struct Registration {
    simnet::NodeId device;
    std::deque<QueuedPush> queue;
  };
  struct Lease {
    std::string holder;
    std::uint64_t epoch = 0;
    Micros expires_at = 0;
  };

  void handle_rpc(const simnet::NodeId& from, const Bytes& body,
                  std::function<void(Bytes)> respond);
  bool try_deliver(const std::string& reg_id, Registration& reg);

  void count(std::uint64_t PushStats::* field, const char* name);
  /// Closes the deliver span of a queued push with an outcome event
  /// (flushed / expired / dropped).
  void end_queued_span(const QueuedPush& push, const char* outcome);

  simnet::Network& network_;
  std::unique_ptr<simnet::Node> node_;
  RandomSource& rng_;
  std::map<std::string, Registration> registrations_;
  std::map<std::string, Lease> leases_;
  std::size_t max_queue_per_device_ = 64;
  PushStats stats_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Histogram* delivery_latency_ = nullptr;
};

/// Client helpers used by the phone and the Amnesia server.
class PushClient {
 public:
  PushClient(simnet::Node& node, simnet::NodeId service)
      : node_(node), service_(std::move(service)) {}

  /// Device side: obtain a registration id for this node.
  void register_device(std::function<void(Result<std::string>)> cb);

  /// Device side: announce reachability, flushing queued pushes.
  void connect(const std::string& reg_id, std::function<void(Status)> cb,
               Micros timeout_us = simnet::Node::kDefaultTimeoutUs);

  /// Sender side: push `payload` to the device behind `reg_id`.
  /// `timeout_us` bounds the RPC — the rendezvous breaker path passes a
  /// deadline-clamped value so a dead GCM fails fast.
  void push(const std::string& reg_id, Bytes payload, Micros ttl_us,
            std::function<void(Status)> cb,
            Micros timeout_us = simnet::Node::kDefaultTimeoutUs);

  void unregister(const std::string& reg_id, std::function<void(Status)> cb);

  /// Outcome of a lease RPC: who holds the lease now and at what epoch.
  /// The caller won iff holder == its own node id.
  struct LeaseState {
    std::string holder;
    std::uint64_t epoch = 0;
  };

  /// Cluster side: try to acquire/renew the primary lease for
  /// `cluster_id` as `node_id` at `epoch`. The callback's LeaseState is
  /// the post-call truth (grant or the competing holder on rejection).
  void acquire_lease(const std::string& cluster_id, const std::string& node_id,
                     std::uint64_t epoch, Micros ttl_us,
                     std::function<void(Result<LeaseState>)> cb,
                     Micros timeout_us = simnet::Node::kDefaultTimeoutUs);

  /// Reads the current lease (empty holder = none / expired).
  void get_lease(const std::string& cluster_id,
                 std::function<void(Result<LeaseState>)> cb,
                 Micros timeout_us = simnet::Node::kDefaultTimeoutUs);

 private:
  simnet::Node& node_;
  simnet::NodeId service_;
};

}  // namespace amnesia::rendezvous
