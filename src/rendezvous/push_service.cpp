#include "rendezvous/push_service.h"

#include "common/error.h"
#include "common/logging.h"
#include "storage/codec.h"

namespace amnesia::rendezvous {

namespace {

constexpr std::uint8_t kOpRegister = 0x01;
constexpr std::uint8_t kOpPush = 0x02;
constexpr std::uint8_t kOpConnect = 0x03;
constexpr std::uint8_t kOpUnregister = 0x04;
constexpr std::uint8_t kOpLeaseAcquire = 0x05;
constexpr std::uint8_t kOpLeaseGet = 0x06;

constexpr std::uint8_t kStatusOk = 0x00;
constexpr std::uint8_t kStatusUnknownId = 0x01;
constexpr std::uint8_t kStatusMalformed = 0x02;
constexpr std::uint8_t kStatusLeaseHeld = 0x03;

Bytes status_reply(std::uint8_t status) {
  storage::BufWriter w;
  w.u8(status);
  return w.take();
}

}  // namespace

PushService::PushService(simnet::Network& network, simnet::NodeId node_id,
                         RandomSource& rng)
    : network_(network),
      node_(std::make_unique<simnet::Node>(network, std::move(node_id))),
      rng_(rng) {
  node_->set_rpc_handler([this](const simnet::NodeId& from, const Bytes& body,
                                std::function<void(Bytes)> respond) {
    handle_rpc(from, body, std::move(respond));
  });
}

void PushService::set_metrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  delivery_latency_ =
      registry ? &registry->histogram("push.delivery_latency_us") : nullptr;
}

void PushService::count(std::uint64_t PushStats::* field, const char* name) {
  ++(stats_.*field);
  if (metrics_) metrics_->counter(name).inc();
}

void PushService::end_queued_span(const QueuedPush& push,
                                  const char* outcome) {
  if (!metrics_ || !push.trace.valid()) return;
  metrics_->tracer().add_event(push.trace, outcome);
  metrics_->tracer().end(push.trace);
}

void PushService::reap_expired() {
  // Per-push TTLs are independent, so an expired entry can sit behind a
  // fresh queue head — scan the whole queue, not just the front.
  const Micros now = network_.sim().now();
  for (auto& [reg_id, reg] : registrations_) {
    for (auto it = reg.queue.begin(); it != reg.queue.end();) {
      if (it->expires_at <= now) {
        end_queued_span(*it, "expired: ttl passed");
        it = reg.queue.erase(it);
        count(&PushStats::pushes_expired, "push.pushes_expired");
      } else {
        ++it;
      }
    }
  }
}

bool PushService::try_deliver(const std::string& reg_id, Registration& reg) {
  // GCM can deliver only when the device is reachable; the network layer
  // knows whether the node is attached and online.
  if (!network_.attached(reg.device) || !network_.online(reg.device)) {
    return false;
  }
  (void)reg_id;
  return true;
}

void PushService::handle_rpc(const simnet::NodeId& from, const Bytes& body,
                             std::function<void(Bytes)> respond) {
  reap_expired();
  try {
    storage::BufReader r(body);
    const std::uint8_t op = r.u8();
    switch (op) {
      case kOpRegister: {
        const std::string device = r.str();
        // Registration ids are opaque and unguessable, like GCM tokens.
        const std::string reg_id = "gcm-" + hex_encode(rng_.bytes(16));
        registrations_[reg_id] = Registration{device, {}};
        count(&PushStats::registrations, "push.registrations");
        storage::BufWriter w;
        w.u8(kStatusOk);
        w.str(reg_id);
        respond(w.take());
        return;
      }
      case kOpPush: {
        const std::string reg_id = r.str();
        const Micros ttl_us = r.i64();
        const Bytes payload = r.bytes();
        // Optional trailing trace context from the sender; the deliver
        // span makes the GCM hop visible in the login's trace tree.
        std::string trace_str;
        if (!r.done()) trace_str = r.str();
        obs::TraceContext deliver_span;
        if (metrics_) {
          if (const auto parsed = obs::parse_trace_header(trace_str)) {
            deliver_span = metrics_->tracer().start_span("rendezvous.deliver",
                                                         "gcm", *parsed);
          }
        }
        const auto it = registrations_.find(reg_id);
        if (it == registrations_.end()) {
          count(&PushStats::unknown_registration, "push.unknown_registration");
          if (deliver_span.valid()) {
            metrics_->tracer().add_event(deliver_span, "unknown registration");
            metrics_->tracer().end(deliver_span);
          }
          respond(status_reply(kStatusUnknownId));
          return;
        }
        count(&PushStats::pushes_accepted, "push.pushes_accepted");
        Registration& reg = it->second;
        if (try_deliver(reg_id, reg)) {
          node_->send_oneway(reg.device, payload);
          count(&PushStats::pushes_delivered, "push.pushes_delivered");
          if (delivery_latency_) delivery_latency_->record(0);
          if (deliver_span.valid()) metrics_->tracer().end(deliver_span);
        } else {
          const Micros now = network_.sim().now();
          if (reg.queue.size() >= max_queue_per_device_) {
            // Bounded backlog: the oldest queued push is the most likely
            // to be expired/superseded, so it is the one to drop.
            end_queued_span(reg.queue.front(), "dropped: queue overflow");
            reg.queue.pop_front();
            count(&PushStats::pushes_dropped_overflow,
                  "push.pushes_dropped_overflow");
          }
          if (deliver_span.valid()) {
            metrics_->tracer().add_event(deliver_span,
                                         "queued: device offline");
          }
          reg.queue.push_back(
              QueuedPush{payload, now + ttl_us, now, deliver_span});
          count(&PushStats::pushes_queued, "push.pushes_queued");
        }
        respond(status_reply(kStatusOk));
        return;
      }
      case kOpConnect: {
        const std::string reg_id = r.str();
        const auto it = registrations_.find(reg_id);
        if (it == registrations_.end()) {
          count(&PushStats::unknown_registration, "push.unknown_registration");
          respond(status_reply(kStatusUnknownId));
          return;
        }
        Registration& reg = it->second;
        // The device may have reinstalled on a different node; follow it.
        reg.device = from;
        while (!reg.queue.empty()) {
          node_->send_oneway(reg.device, reg.queue.front().payload);
          count(&PushStats::pushes_delivered, "push.pushes_delivered");
          if (delivery_latency_) {
            delivery_latency_->record(network_.sim().now() -
                                      reg.queue.front().queued_at);
          }
          end_queued_span(reg.queue.front(), "flushed on reconnect");
          reg.queue.pop_front();
        }
        respond(status_reply(kStatusOk));
        return;
      }
      case kOpUnregister: {
        const std::string reg_id = r.str();
        if (registrations_.erase(reg_id) == 0) {
          respond(status_reply(kStatusUnknownId));
        } else {
          respond(status_reply(kStatusOk));
        }
        return;
      }
      case kOpLeaseAcquire: {
        const std::string cluster_id = r.str();
        const std::string node = r.str();
        const std::uint64_t epoch = r.u64();
        const Micros ttl_us = r.i64();
        const Micros now = network_.sim().now();
        Lease& lease = leases_[cluster_id];
        const bool expired = lease.holder.empty() || lease.expires_at <= now;
        // Grant on: free/expired lease, a renewal by the current holder,
        // or a strictly higher epoch (a promoted follower fencing the old
        // primary — the crashed holder's renewals then lose, not tie).
        const bool granted =
            expired || (lease.holder == node && epoch >= lease.epoch) ||
            epoch > lease.epoch;
        if (granted) {
          lease = Lease{node, epoch, now + ttl_us};
          count(&PushStats::lease_grants, "push.lease_grants");
        } else {
          count(&PushStats::lease_rejections, "push.lease_rejections");
        }
        storage::BufWriter w;
        w.u8(granted ? kStatusOk : kStatusLeaseHeld);
        w.str(lease.holder);
        w.u64(lease.epoch);
        respond(w.take());
        return;
      }
      case kOpLeaseGet: {
        const std::string cluster_id = r.str();
        const Micros now = network_.sim().now();
        storage::BufWriter w;
        w.u8(kStatusOk);
        const auto it = leases_.find(cluster_id);
        if (it == leases_.end() || it->second.expires_at <= now) {
          w.str("");
          w.u64(it == leases_.end() ? 0 : it->second.epoch);
        } else {
          w.str(it->second.holder);
          w.u64(it->second.epoch);
        }
        respond(w.take());
        return;
      }
      default:
        respond(status_reply(kStatusMalformed));
        return;
    }
  } catch (const FormatError&) {
    respond(status_reply(kStatusMalformed));
  }
}

// ------------------------------------------------------------- PushClient

void PushClient::register_device(
    std::function<void(Result<std::string>)> cb) {
  storage::BufWriter w;
  w.u8(kOpRegister);
  w.str(node_.id());
  node_.request(service_, w.take(), [cb = std::move(cb)](Result<Bytes> r) {
    if (!r.ok()) {
      cb(Result<std::string>(r.failure()));
      return;
    }
    try {
      storage::BufReader reader(r.value());
      if (reader.u8() != kStatusOk) {
        cb(Result<std::string>(Err::kInternal, "rendezvous rejected register"));
        return;
      }
      cb(Result<std::string>(reader.str()));
    } catch (const FormatError& e) {
      cb(Result<std::string>(Err::kInternal, e.what()));
    }
  });
}

namespace {

void expect_ok(Result<Bytes> r, const std::function<void(Status)>& cb) {
  if (!r.ok()) {
    cb(Status(r.failure()));
    return;
  }
  try {
    storage::BufReader reader(r.value());
    const std::uint8_t status = reader.u8();
    if (status == kStatusOk) {
      cb(ok_status());
    } else if (status == kStatusUnknownId) {
      cb(Status(Err::kNotFound, "unknown registration id"));
    } else {
      cb(Status(Err::kInvalidArgument, "malformed rendezvous request"));
    }
  } catch (const FormatError& e) {
    cb(Status(Err::kInternal, e.what()));
  }
}

}  // namespace

void PushClient::connect(const std::string& reg_id,
                         std::function<void(Status)> cb, Micros timeout_us) {
  storage::BufWriter w;
  w.u8(kOpConnect);
  w.str(reg_id);
  node_.request(
      service_, w.take(),
      [cb = std::move(cb)](Result<Bytes> r) { expect_ok(std::move(r), cb); },
      timeout_us);
}

void PushClient::push(const std::string& reg_id, Bytes payload, Micros ttl_us,
                      std::function<void(Status)> cb, Micros timeout_us) {
  storage::BufWriter w;
  w.u8(kOpPush);
  w.str(reg_id);
  w.i64(ttl_us);
  w.bytes(payload);
  if (const obs::TraceContext ctx = obs::current_trace(); ctx.valid()) {
    w.str(obs::format_trace_header(ctx));
  }
  node_.request(
      service_, w.take(),
      [cb = std::move(cb)](Result<Bytes> r) { expect_ok(std::move(r), cb); },
      timeout_us);
}

namespace {

void parse_lease_reply(Result<Bytes> r,
                       const std::function<void(Result<PushClient::LeaseState>)>&
                           cb) {
  if (!r.ok()) {
    cb(Result<PushClient::LeaseState>(r.failure()));
    return;
  }
  try {
    storage::BufReader reader(r.value());
    const std::uint8_t status = reader.u8();
    if (status != kStatusOk && status != kStatusLeaseHeld) {
      cb(Result<PushClient::LeaseState>(Err::kInvalidArgument,
                                        "malformed lease request"));
      return;
    }
    PushClient::LeaseState state;
    state.holder = reader.str();
    state.epoch = reader.u64();
    cb(Result<PushClient::LeaseState>(std::move(state)));
  } catch (const FormatError& e) {
    cb(Result<PushClient::LeaseState>(Err::kInternal, e.what()));
  }
}

}  // namespace

void PushClient::acquire_lease(const std::string& cluster_id,
                               const std::string& node_id, std::uint64_t epoch,
                               Micros ttl_us,
                               std::function<void(Result<LeaseState>)> cb,
                               Micros timeout_us) {
  storage::BufWriter w;
  w.u8(kOpLeaseAcquire);
  w.str(cluster_id);
  w.str(node_id);
  w.u64(epoch);
  w.i64(ttl_us);
  node_.request(
      service_, w.take(),
      [cb = std::move(cb)](Result<Bytes> r) {
        parse_lease_reply(std::move(r), cb);
      },
      timeout_us);
}

void PushClient::get_lease(const std::string& cluster_id,
                           std::function<void(Result<LeaseState>)> cb,
                           Micros timeout_us) {
  storage::BufWriter w;
  w.u8(kOpLeaseGet);
  w.str(cluster_id);
  node_.request(
      service_, w.take(),
      [cb = std::move(cb)](Result<Bytes> r) {
        parse_lease_reply(std::move(r), cb);
      },
      timeout_us);
}

void PushClient::unregister(const std::string& reg_id,
                            std::function<void(Status)> cb) {
  storage::BufWriter w;
  w.u8(kOpUnregister);
  w.str(reg_id);
  node_.request(service_, w.take(), [cb = std::move(cb)](Result<Bytes> r) {
    expect_ok(std::move(r), cb);
  });
}

}  // namespace amnesia::rendezvous
