// Deterministic discrete-event simulation core.
//
// All distributed pieces of the reproduction — browser, Amnesia server,
// rendezvous service, phone, cloud storage — run as endpoints inside one
// Simulation. Virtual time advances only when events fire, so a full
// latency experiment (Fig. 3: 2x100 trials) runs in milliseconds of real
// time and is bit-for-bit reproducible from the seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "net/executor.h"

namespace amnesia::simnet {

/// Simulation implements net::Executor so protocol components written
/// against the executor surface (HttpServer's worker model, RPC timeouts)
/// run unchanged in virtual time: post() is a zero-delay event,
/// run_after() is schedule_after. Unlike net::EventLoop, this executor is
/// single-threaded — call it only from the thread driving the simulation.
class Simulation : public net::Executor {
 public:
  /// Seeds the simulation's private RandomSource (delay sampling, loss).
  explicit Simulation(std::uint64_t seed);
  ~Simulation() override;

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Micros now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (>= now). Events at equal
  /// times fire in scheduling order.
  void schedule_at(Micros t, std::function<void()> fn);

  /// Schedules `fn` after `delta` microseconds (clamped to >= 0).
  void schedule_after(Micros delta, std::function<void()> fn);

  /// Runs until the event queue drains. Returns the number of events run.
  std::size_t run();

  /// Runs exactly one event; returns false if the queue was empty. Lets
  /// callers stop as soon as a condition holds (e.g. a reply arrived)
  /// without fast-forwarding through unrelated future timers.
  bool step();

  /// Runs events with time <= `t`, then sets now to `t`.
  std::size_t run_until(Micros t);

  /// Safety-capped run: drains the queue but throws Error after
  /// `max_events` (runaway-loop guard in tests).
  std::size_t run_capped(std::size_t max_events);

  bool idle() const { return queue_.empty(); }

  /// Virtual time of the earliest queued event; -1 when idle. Lets a
  /// real-time driver (server::NetGateway) sleep exactly until the next
  /// simulated event is due instead of polling.
  Micros next_event_time() const { return idle() ? -1 : queue_.top().time; }

  RandomSource& rng() { return *rng_; }

  // ---- net::Executor ---------------------------------------------------
  void post(std::function<void()> fn) override { schedule_after(0, std::move(fn)); }
  void run_after(Micros delay_us, std::function<void()> fn) override {
    schedule_after(delay_us, std::move(fn));
  }
  /// A Clock view of virtual time, for injection into protocol components.
  Clock& clock() override { return clock_view_; }

 private:
  struct Event {
    Micros time;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  class SimClockView final : public Clock {
   public:
    explicit SimClockView(const Simulation& sim) : sim_(sim) {}
    Micros now_us() const override { return sim_.now(); }

   private:
    const Simulation& sim_;
  };

  bool pop_and_run();

  Micros now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unique_ptr<RandomSource> rng_;
  SimClockView clock_view_{*this};
};

}  // namespace amnesia::simnet
