// SimStreamTransport: the simulated backend of net::Transport.
//
// Streams are carried over the simulated datagram network: each chunk is
// one Network::send with a [stream_id:8][seq:8][flags:1][payload] header.
// Links may reorder (jitter) — sequence numbers restore ordering via a
// small stash, so the ByteStream contract (ordered, reliable, arbitrary
// chunk boundaries) holds over lossy-free links. Chunking (default 1200
// bytes, an MTU-ish value) means receivers genuinely see torn message
// boundaries, exercising the same reassembly paths as real TCP.
//
// There is no SYN: a stream exists at the receiver from its first chunk,
// and listen()'s accept handler fires at that moment. FIN consumes a
// sequence slot so it orders after all data. Local close() does not fire
// on_close (same contract as TcpConnection).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "net/transport.h"
#include "simnet/network.h"

namespace amnesia::simnet {

class SimStreamTransport;

/// Default per-datagram payload cap (MTU-ish, so boundaries tear).
constexpr std::size_t kDefaultStreamChunk = 1200;

class SimStream final : public net::ByteStream,
                        public std::enable_shared_from_this<SimStream> {
 public:
  SimStream(SimStreamTransport& transport, NodeId remote,
            std::uint64_t stream_id);

  // net::ByteStream
  void set_handlers(Handlers handlers) override;
  bool send(ByteView data) override;
  void close() override;
  bool closed() const override { return closed_; }
  std::size_t write_queue_bytes() const override { return 0; }
  void set_idle_timeout(Micros timeout_us) override;
  std::string peer() const override;

 private:
  friend class SimStreamTransport;

  /// Called by the transport for each arriving chunk of this stream.
  void on_chunk(std::uint64_t seq, std::uint8_t flags, ByteView payload);
  void process(std::uint8_t flags, ByteView payload);
  void handle_fin();
  void arm_idle_timer(Micros delay_us);
  void on_idle_timer();

  SimStreamTransport& transport_;
  NodeId remote_;
  std::uint64_t stream_id_;
  Handlers handlers_;
  std::uint64_t next_send_seq_ = 0;
  std::uint64_t next_recv_seq_ = 0;
  /// Chunks that arrived ahead of next_recv_seq_ (link jitter reorder).
  std::map<std::uint64_t, std::pair<std::uint8_t, Bytes>> stash_;
  bool closed_ = false;

  Micros idle_timeout_us_ = 0;
  Micros last_activity_us_ = 0;
  bool idle_timer_armed_ = false;
};

class SimStreamTransport final : public net::Transport, public Endpoint {
 public:
  /// Attaches to `network` under `local`; connect() dials `remote`
  /// (another SimStreamTransport's local id).
  SimStreamTransport(Network& network, NodeId local, NodeId remote = {});
  ~SimStreamTransport() override;

  // net::Transport
  void listen(AcceptHandler on_accept) override;
  void connect(ConnectHandler on_connected) override;
  net::Executor& executor() override { return network_.sim(); }

  // Endpoint
  void on_message(const Message& msg) override;

  const NodeId& id() const { return id_; }
  /// Applied to streams accepted from now on (mirrors TcpTransport).
  void set_idle_timeout(Micros timeout_us) { idle_timeout_us_ = timeout_us; }
  void set_chunk_size(std::size_t bytes) { chunk_size_ = bytes; }
  std::size_t open_streams() const { return streams_.size(); }

 private:
  friend class SimStream;
  using StreamKey = std::pair<NodeId, std::uint64_t>;

  void send_chunk(const NodeId& to, std::uint64_t stream_id, std::uint64_t seq,
                  std::uint8_t flags, ByteView payload);
  void forget(const NodeId& remote, std::uint64_t stream_id);

  Network& network_;
  NodeId id_;
  NodeId remote_;
  AcceptHandler on_accept_;
  std::map<StreamKey, std::shared_ptr<SimStream>> streams_;
  std::uint64_t next_stream_id_ = 1;
  std::size_t chunk_size_ = kDefaultStreamChunk;
  Micros idle_timeout_us_ = 0;
};

}  // namespace amnesia::simnet
