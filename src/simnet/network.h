// Simulated message network.
//
// Nodes are attached by name ("browser", "amnesia-server", "gcm",
// "phone", ...). send() samples the directed link's profile and schedules
// delivery to the destination endpoint; messages to detached or offline
// nodes are dropped, as are messages losing the link's loss coin.
//
// Taps: attack code (section IV of the paper) registers observers that see
// every message on a path — this is how "rendezvous server eavesdropping"
// and "broken HTTPS" adversaries are expressed as running code. A tap can
// also mutate or drop traffic (active man-in-the-middle, used by the
// secure-channel tamper tests).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "simnet/link.h"
#include "simnet/sim.h"

namespace amnesia::simnet {

using NodeId = std::string;

struct Message {
  NodeId from;
  NodeId to;
  Bytes payload;
};

class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void on_message(const Message& msg) = 0;
};

/// What a registered tap may do with an observed message.
enum class TapAction { kPass, kDrop };

/// Observer/interceptor: may record the message and/or mutate its payload.
/// Returning kDrop suppresses delivery.
using Tap = std::function<TapAction(Micros time, Message& msg)>;

struct NetworkStats {
  std::size_t sent = 0;
  std::size_t delivered = 0;
  std::size_t lost_on_link = 0;
  std::size_t dropped_no_destination = 0;
  std::size_t dropped_offline = 0;
  std::size_t dropped_by_tap = 0;
};

class Network {
 public:
  explicit Network(Simulation& sim) : sim_(sim) {}

  /// Registers `endpoint` under `id`. Throws NetError on duplicates.
  void attach(const NodeId& id, Endpoint* endpoint);

  /// Removes the node; in-flight messages to it are dropped on delivery.
  void detach(const NodeId& id);

  bool attached(const NodeId& id) const { return nodes_.contains(id); }

  /// Marks a node (un)reachable without detaching it — models a phone
  /// that is powered off or out of coverage (paper section VIII).
  void set_online(const NodeId& id, bool online);
  bool online(const NodeId& id) const;

  /// Sets the profile for the directed path from -> to.
  void set_link(const NodeId& from, const NodeId& to, LinkProfile profile);

  /// Sets the profile for both directions.
  void set_duplex_link(const NodeId& a, const NodeId& b,
                       const LinkProfile& ab, const LinkProfile& ba);

  /// Fallback profile when no per-path link is configured.
  void set_default_link(LinkProfile profile) {
    default_link_ = std::move(profile);
  }

  /// Sends `payload` from `from` to `to`. The sender must be attached.
  void send(const NodeId& from, const NodeId& to, Bytes payload);

  /// Registers a tap observing every message whose (from, to) matches;
  /// empty strings are wildcards. Returns a tap id for remove_tap().
  std::size_t add_tap(const NodeId& from, const NodeId& to, Tap tap);
  void remove_tap(std::size_t tap_id);

  const NetworkStats& stats() const { return stats_; }
  Simulation& sim() { return sim_; }

 private:
  struct TapEntry {
    std::size_t id;
    NodeId from;  // empty = any
    NodeId to;    // empty = any
    Tap fn;
  };

  const LinkProfile& link_for(const NodeId& from, const NodeId& to) const;
  void deliver(Message msg);

  Simulation& sim_;
  std::map<NodeId, Endpoint*> nodes_;
  std::map<NodeId, bool> offline_;
  std::map<std::pair<NodeId, NodeId>, LinkProfile> links_;
  LinkProfile default_link_{};
  std::vector<TapEntry> taps_;
  std::size_t next_tap_id_ = 1;
  NetworkStats stats_;
};

}  // namespace amnesia::simnet
