#include "simnet/sim.h"

#include "common/error.h"
#include "crypto/drbg.h"

namespace amnesia::simnet {

Simulation::Simulation(std::uint64_t seed)
    : rng_(std::make_unique<crypto::ChaChaDrbg>(seed)) {}

Simulation::~Simulation() = default;

void Simulation::schedule_at(Micros t, std::function<void()> fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulation::schedule_after(Micros delta, std::function<void()> fn) {
  schedule_at(now_ + std::max<Micros>(delta, 0), std::move(fn));
}

bool Simulation::pop_and_run() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the event is copied out, then popped,
  // so handlers may schedule freely.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ev.fn();
  return true;
}

std::size_t Simulation::run() {
  std::size_t count = 0;
  while (pop_and_run()) ++count;
  return count;
}

bool Simulation::step() { return pop_and_run(); }

std::size_t Simulation::run_until(Micros t) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    pop_and_run();
    ++count;
  }
  if (now_ < t) now_ = t;
  return count;
}

std::size_t Simulation::run_capped(std::size_t max_events) {
  std::size_t count = 0;
  while (pop_and_run()) {
    if (++count > max_events) {
      throw Error("Simulation::run_capped: event budget exceeded");
    }
  }
  return count;
}

}  // namespace amnesia::simnet
