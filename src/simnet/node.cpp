#include "simnet/node.h"

#include <utility>

#include "common/error.h"
#include "common/logging.h"

namespace amnesia::simnet {

namespace {

constexpr std::size_t kHeaderSize = 9;

std::uint64_t read_corr(ByteView frame) {
  std::uint64_t corr = 0;
  for (int i = 0; i < 8; ++i) corr = (corr << 8) | frame[1 + i];
  return corr;
}

}  // namespace

Node::Node(Network& network, NodeId id)
    : network_(network), id_(std::move(id)) {
  network_.attach(id_, this);
}

Node::~Node() { network_.detach(id_); }

Bytes Node::frame(Kind kind, std::uint64_t corr, ByteView body) {
  Bytes out;
  out.reserve(kHeaderSize + body.size());
  out.push_back(static_cast<std::uint8_t>(kind));
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>(corr >> (i * 8)));
  }
  append(out, body);
  return out;
}

void Node::request(const NodeId& to, Bytes body, ResponseHandler cb,
                   Micros timeout_us) {
  const std::uint64_t corr = next_corr_++;
  pending_.emplace(corr, std::move(cb));
  network_.send(id_, to, frame(kRequest, corr, body));
  sim().schedule_after(timeout_us, [this, corr, to] {
    const auto it = pending_.find(corr);
    if (it == pending_.end()) return;  // already answered
    ResponseHandler handler = std::move(it->second);
    pending_.erase(it);
    handler(Result<Bytes>(Err::kUnavailable, "rpc timeout to " + to));
  });
}

void Node::send_oneway(const NodeId& to, Bytes body) {
  network_.send(id_, to, frame(kOneway, 0, body));
}

void Node::on_message(const Message& msg) {
  if (msg.payload.size() < kHeaderSize) {
    AMNESIA_WARN("simnet") << id_ << ": runt frame from " << msg.from;
    return;
  }
  const auto kind = static_cast<Kind>(msg.payload[0]);
  const std::uint64_t corr = read_corr(msg.payload);
  const Bytes body(msg.payload.begin() + kHeaderSize, msg.payload.end());

  switch (kind) {
    case kRequest: {
      if (!rpc_handler_) {
        AMNESIA_DEBUG("simnet") << id_ << ": request with no handler";
        return;
      }
      const NodeId from = msg.from;
      // `respond` captures what it needs by value; the handler may call it
      // asynchronously long after this frame is gone.
      auto respond = [this, from, corr](Bytes response_body) {
        network_.send(id_, from, frame(kResponse, corr, response_body));
      };
      rpc_handler_(from, body, std::move(respond));
      return;
    }
    case kResponse: {
      const auto it = pending_.find(corr);
      if (it == pending_.end()) {
        AMNESIA_DEBUG("simnet") << id_ << ": late/unknown response " << corr;
        return;
      }
      ResponseHandler handler = std::move(it->second);
      pending_.erase(it);
      handler(Result<Bytes>(body));
      return;
    }
    case kOneway: {
      if (oneway_handler_) oneway_handler_(msg.from, body);
      return;
    }
  }
  AMNESIA_WARN("simnet") << id_ << ": unknown frame kind from " << msg.from;
}

}  // namespace amnesia::simnet
