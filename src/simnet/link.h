// Link delay/loss profiles.
//
// A LinkProfile models one direction of a network path: a Gaussian
// propagation+queueing delay (truncated at a floor), a serialization term
// from bandwidth, and an independent loss probability. The built-in
// profiles are calibrated so that the full Amnesia password-generation
// pipeline reproduces the latency distributions of the paper's Fig. 3
// (Cox WiFi 30/10 Mbps and T-Mobile 4G, suburban, 2016) — see
// profiles().wifi_* / .lte_* and bench/bench_fig3_latency.cpp.
#pragma once

#include <string>

#include "common/clock.h"
#include "common/rng.h"

namespace amnesia::simnet {

struct LinkProfile {
  std::string name = "custom";
  double base_latency_ms = 1.0;   // mean one-way delay
  double jitter_ms = 0.0;         // Gaussian standard deviation
  double min_latency_ms = 0.05;   // truncation floor
  double bandwidth_mbps = 1000.0; // serialization: bytes * 8 / bandwidth
  double loss_probability = 0.0;  // per-message independent loss

  /// Samples the delivery delay for a message of `bytes` octets.
  Micros sample_delay(RandomSource& rng, std::size_t bytes) const;

  /// Samples the loss coin.
  bool sample_loss(RandomSource& rng) const;
};

/// The profile set used across tests, examples, and benches.
struct BuiltinProfiles {
  // Last-mile consumer links, calibrated jointly with the compute model in
  // eval/latency.h against the paper's Fig. 3 (see EXPERIMENTS.md).
  LinkProfile wifi_downlink;   // Internet -> home WiFi client
  LinkProfile wifi_uplink;     // home WiFi client -> Internet
  LinkProfile lte_downlink;    // Internet -> 4G handset
  LinkProfile lte_uplink;      // 4G handset -> Internet
  // Data-center and wide-area paths.
  LinkProfile dc_lan;          // server <-> rendezvous/cloud (same region)
  LinkProfile wan;             // browser <-> server wide-area path
  LinkProfile lossy_wan;       // failure-injection variant
};

const BuiltinProfiles& profiles();

}  // namespace amnesia::simnet
