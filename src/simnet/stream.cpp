#include "simnet/stream.h"

#include "common/error.h"
#include "common/logging.h"

namespace amnesia::simnet {
namespace {

constexpr std::uint8_t kData = 0;
constexpr std::uint8_t kFin = 1;
constexpr std::size_t kChunkHeader = 8 + 8 + 1;

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t get_u64(ByteView b, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | b[pos + static_cast<std::size_t>(i)];
  }
  return v;
}

}  // namespace

// ---- SimStream ---------------------------------------------------------

SimStream::SimStream(SimStreamTransport& transport, NodeId remote,
                     std::uint64_t stream_id)
    : transport_(transport), remote_(std::move(remote)), stream_id_(stream_id) {
  last_activity_us_ = transport_.executor().clock().now_us();
}

void SimStream::set_handlers(Handlers handlers) {
  handlers_ = std::move(handlers);
}

std::string SimStream::peer() const {
  return remote_ + "#" + std::to_string(stream_id_);
}

bool SimStream::send(ByteView data) {
  if (closed_) return false;
  last_activity_us_ = transport_.executor().clock().now_us();
  std::size_t pos = 0;
  const std::size_t chunk = transport_.chunk_size_;
  // Always emit at least one chunk so empty writes still carry a seq slot.
  do {
    const std::size_t n = std::min(chunk, data.size() - pos);
    transport_.send_chunk(remote_, stream_id_, next_send_seq_++, kData,
                          data.subspan(pos, n));
    pos += n;
  } while (pos < data.size());
  return true;
}

void SimStream::close() {
  if (closed_) return;
  closed_ = true;
  transport_.send_chunk(remote_, stream_id_, next_send_seq_++, kFin, {});
  handlers_ = Handlers{};
  transport_.forget(remote_, stream_id_);
}

void SimStream::on_chunk(std::uint64_t seq, std::uint8_t flags,
                         ByteView payload) {
  if (closed_) return;
  if (seq != next_recv_seq_) {  // jitter reorder: stash until in order
    stash_.emplace(seq, std::make_pair(flags, Bytes(payload.begin(),
                                                    payload.end())));
    return;
  }
  ++next_recv_seq_;
  process(flags, payload);
  while (!closed_ && !stash_.empty() &&
         stash_.begin()->first == next_recv_seq_) {
    auto node = stash_.extract(stash_.begin());
    ++next_recv_seq_;
    process(node.mapped().first, node.mapped().second);
  }
}

void SimStream::process(std::uint8_t flags, ByteView payload) {
  if (flags == kFin) {
    handle_fin();
    return;
  }
  last_activity_us_ = transport_.executor().clock().now_us();
  if (handlers_.on_data && !payload.empty()) handlers_.on_data(payload);
}

void SimStream::handle_fin() {
  closed_ = true;
  transport_.forget(remote_, stream_id_);
  Handlers handlers = std::move(handlers_);
  handlers_ = Handlers{};
  if (handlers.on_close) handlers.on_close();
}

void SimStream::set_idle_timeout(Micros timeout_us) {
  idle_timeout_us_ = timeout_us;
  last_activity_us_ = transport_.executor().clock().now_us();
  if (timeout_us > 0 && !idle_timer_armed_ && !closed_) {
    arm_idle_timer(timeout_us);
  }
}

void SimStream::arm_idle_timer(Micros delay_us) {
  idle_timer_armed_ = true;
  std::weak_ptr<SimStream> weak = weak_from_this();
  transport_.executor().run_after(delay_us, [weak]() {
    if (auto self = weak.lock()) self->on_idle_timer();
  });
}

void SimStream::on_idle_timer() {
  idle_timer_armed_ = false;
  if (closed_ || idle_timeout_us_ <= 0) return;
  const Micros idle =
      transport_.executor().clock().now_us() - last_activity_us_;
  if (idle >= idle_timeout_us_) {
    AMNESIA_INFO("simnet.stream") << peer() << ": idle timeout";
    closed_ = true;
    transport_.send_chunk(remote_, stream_id_, next_send_seq_++, kFin, {});
    transport_.forget(remote_, stream_id_);
    Handlers handlers = std::move(handlers_);
    handlers_ = Handlers{};
    if (handlers.on_close) handlers.on_close();
    return;
  }
  arm_idle_timer(idle_timeout_us_ - idle);
}

// ---- SimStreamTransport ------------------------------------------------

SimStreamTransport::SimStreamTransport(Network& network, NodeId local,
                                       NodeId remote)
    : network_(network), id_(std::move(local)), remote_(std::move(remote)) {
  network_.attach(id_, this);
}

SimStreamTransport::~SimStreamTransport() {
  // Handlers routinely capture their own StreamPtr (self-owning
  // sessions); drop them so those reference cycles cannot outlive the
  // transport that carried them.
  for (auto& [key, stream] : streams_) {
    stream->closed_ = true;
    stream->handlers_ = net::ByteStream::Handlers{};
  }
  network_.detach(id_);
}

void SimStreamTransport::listen(AcceptHandler on_accept) {
  on_accept_ = std::move(on_accept);
}

void SimStreamTransport::connect(ConnectHandler on_connected) {
  if (remote_.empty()) {
    on_connected(Result<net::StreamPtr>(Err::kInvalidArgument,
                                        "transport has no remote peer"));
    return;
  }
  auto stream =
      std::make_shared<SimStream>(*this, remote_, next_stream_id_++);
  streams_[{remote_, stream->stream_id_}] = stream;
  on_connected(Result<net::StreamPtr>(net::StreamPtr(stream)));
}

void SimStreamTransport::send_chunk(const NodeId& to, std::uint64_t stream_id,
                                    std::uint64_t seq, std::uint8_t flags,
                                    ByteView payload) {
  Bytes msg;
  msg.reserve(kChunkHeader + payload.size());
  put_u64(msg, stream_id);
  put_u64(msg, seq);
  msg.push_back(flags);
  append(msg, payload);
  network_.send(id_, to, std::move(msg));
}

void SimStreamTransport::forget(const NodeId& remote, std::uint64_t stream_id) {
  streams_.erase({remote, stream_id});
}

void SimStreamTransport::on_message(const Message& msg) {
  if (msg.payload.size() < kChunkHeader) {
    AMNESIA_WARN("simnet.stream") << id_ << ": runt chunk from " << msg.from;
    return;
  }
  const std::uint64_t stream_id = get_u64(msg.payload, 0);
  const std::uint64_t seq = get_u64(msg.payload, 8);
  const std::uint8_t flags = msg.payload[16];
  const ByteView payload(msg.payload.data() + kChunkHeader,
                         msg.payload.size() - kChunkHeader);

  const StreamKey key{msg.from, stream_id};
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    if (!on_accept_) return;  // stray chunk for a closed/unknown stream
    auto stream = std::make_shared<SimStream>(*this, msg.from, stream_id);
    it = streams_.emplace(key, stream).first;
    if (idle_timeout_us_ > 0) stream->set_idle_timeout(idle_timeout_us_);
    on_accept_(stream);
  }
  // Hold a local ref: on_chunk may forget() the stream mid-call.
  std::shared_ptr<SimStream> stream = it->second;
  stream->on_chunk(seq, flags, payload);
}

}  // namespace amnesia::simnet
