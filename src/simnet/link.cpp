#include "simnet/link.h"

#include <algorithm>

namespace amnesia::simnet {

Micros LinkProfile::sample_delay(RandomSource& rng, std::size_t bytes) const {
  double delay_ms = rng.gaussian(base_latency_ms, jitter_ms);
  delay_ms = std::max(delay_ms, min_latency_ms);
  if (bandwidth_mbps > 0.0) {
    delay_ms += static_cast<double>(bytes) * 8.0 / (bandwidth_mbps * 1000.0);
  }
  return ms_to_us(delay_ms);
}

bool LinkProfile::sample_loss(RandomSource& rng) const {
  if (loss_probability <= 0.0) return false;
  return rng.uniform01() < loss_probability;
}

const BuiltinProfiles& profiles() {
  // Calibration notes (paper Fig. 3 targets: WiFi mean 785.3 ms,
  // sigma 171.5 ms; 4G mean 978.7 ms, sigma 137.9 ms over 100 trials):
  // the measured pipeline is
  //   server -> GCM (dc_lan)            ~  8 +- 2 ms
  //   GCM push -> phone (x_downlink)    dominates both mean and variance
  //   phone compute                     ~ 25 +- 8 ms  (latency experiment)
  //   phone -> server (x_uplink)        second-largest term
  //   server compute                    ~ 15 +- 5 ms  (latency experiment)
  // Means add; variances add in quadrature. The downlink/uplink split
  // below solves those two equations per network, attributing most delay
  // to the 2016-era GCM push path, as the paper's discussion implies.
  static const BuiltinProfiles kProfiles = [] {
    BuiltinProfiles p;
    p.wifi_downlink = {.name = "wifi-down(GCM push)",
                       .base_latency_ms = 560.0,
                       .jitter_ms = 160.0,
                       .min_latency_ms = 60.0,
                       .bandwidth_mbps = 30.0,
                       .loss_probability = 0.0};
    p.wifi_uplink = {.name = "wifi-up",
                     .base_latency_ms = 177.0,
                     .jitter_ms = 61.0,
                     .min_latency_ms = 20.0,
                     .bandwidth_mbps = 10.0,
                     .loss_probability = 0.0};
    p.lte_downlink = {.name = "4g-down(GCM push)",
                      .base_latency_ms = 640.0,
                      .jitter_ms = 120.0,
                      .min_latency_ms = 80.0,
                      .bandwidth_mbps = 20.0,
                      .loss_probability = 0.0};
    p.lte_uplink = {.name = "4g-up",
                    .base_latency_ms = 291.0,
                    .jitter_ms = 67.0,
                    .min_latency_ms = 40.0,
                    .bandwidth_mbps = 8.0,
                    .loss_probability = 0.0};
    p.dc_lan = {.name = "dc-lan",
                .base_latency_ms = 8.0,
                .jitter_ms = 2.0,
                .min_latency_ms = 1.0,
                .bandwidth_mbps = 1000.0,
                .loss_probability = 0.0};
    p.wan = {.name = "wan",
             .base_latency_ms = 40.0,
             .jitter_ms = 10.0,
             .min_latency_ms = 5.0,
             .bandwidth_mbps = 100.0,
             .loss_probability = 0.0};
    p.lossy_wan = {.name = "lossy-wan",
                   .base_latency_ms = 40.0,
                   .jitter_ms = 10.0,
                   .min_latency_ms = 5.0,
                   .bandwidth_mbps = 100.0,
                   .loss_probability = 0.05};
    return p;
  }();
  return kProfiles;
}

}  // namespace amnesia::simnet
