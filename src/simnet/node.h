// Node: the per-host messaging façade over the simulated network.
//
// Every simulated host (browser, Amnesia server, GCM, phone, cloud) owns
// one Node. A Node offers three primitives that the higher layers build
// on:
//   - request/response RPC with correlation ids and timeouts (the
//     HTTP-over-TCP stand-in used by browser->server and phone->server),
//   - one-way datagrams (the GCM push delivery),
//   - an RPC-server handler that may respond asynchronously — essential
//     for Amnesia, whose server answers the browser only after a
//     round-trip through the rendezvous service and the phone.
//
// Wire framing: [kind:1][corr_id:8 big-endian][body...].
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "common/bytes.h"
#include "common/result.h"
#include "simnet/network.h"

namespace amnesia::simnet {

using ResponseHandler = std::function<void(Result<Bytes>)>;

class Node final : public Endpoint {
 public:
  /// Handler invoked for incoming RPC requests; `respond` may be called
  /// immediately or stored and called later (at most once).
  using RpcHandler = std::function<void(const NodeId& from, const Bytes& body,
                                        std::function<void(Bytes)> respond)>;
  using OnewayHandler =
      std::function<void(const NodeId& from, const Bytes& body)>;

  /// Attaches to the network under `id`; detaches on destruction.
  Node(Network& network, NodeId id);
  ~Node() override;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const NodeId& id() const { return id_; }
  Network& network() { return network_; }
  Simulation& sim() { return network_.sim(); }

  /// Issues an RPC to `to`. `cb` receives the response body or
  /// Err::kUnavailable after `timeout_us` with no reply.
  void request(const NodeId& to, Bytes body, ResponseHandler cb,
               Micros timeout_us = kDefaultTimeoutUs);

  void set_rpc_handler(RpcHandler handler) { rpc_handler_ = std::move(handler); }

  /// Fire-and-forget datagram.
  void send_oneway(const NodeId& to, Bytes body);

  void set_oneway_handler(OnewayHandler handler) {
    oneway_handler_ = std::move(handler);
  }

  void on_message(const Message& msg) override;

  static constexpr Micros kDefaultTimeoutUs = 10'000'000;  // 10 s

 private:
  enum Kind : std::uint8_t { kRequest = 0, kResponse = 1, kOneway = 2 };

  static Bytes frame(Kind kind, std::uint64_t corr, ByteView body);

  Network& network_;
  NodeId id_;
  std::uint64_t next_corr_ = 1;
  std::map<std::uint64_t, ResponseHandler> pending_;
  RpcHandler rpc_handler_;
  OnewayHandler oneway_handler_;
};

}  // namespace amnesia::simnet
