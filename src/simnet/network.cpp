#include "simnet/network.h"

#include <algorithm>

#include "common/error.h"
#include "common/logging.h"
#include "resilience/fault.h"

namespace amnesia::simnet {

void Network::attach(const NodeId& id, Endpoint* endpoint) {
  if (endpoint == nullptr) throw NetError("Network::attach: null endpoint");
  const auto [it, inserted] = nodes_.emplace(id, endpoint);
  (void)it;
  if (!inserted) throw NetError("Network::attach: duplicate node " + id);
}

void Network::detach(const NodeId& id) {
  nodes_.erase(id);
  offline_.erase(id);
}

void Network::set_online(const NodeId& id, bool online) {
  offline_[id] = !online;
}

bool Network::online(const NodeId& id) const {
  const auto it = offline_.find(id);
  return it == offline_.end() || !it->second;
}

void Network::set_link(const NodeId& from, const NodeId& to,
                       LinkProfile profile) {
  links_[{from, to}] = std::move(profile);
}

void Network::set_duplex_link(const NodeId& a, const NodeId& b,
                              const LinkProfile& ab, const LinkProfile& ba) {
  set_link(a, b, ab);
  set_link(b, a, ba);
}

const LinkProfile& Network::link_for(const NodeId& from,
                                     const NodeId& to) const {
  const auto it = links_.find({from, to});
  return it == links_.end() ? default_link_ : it->second;
}

void Network::send(const NodeId& from, const NodeId& to, Bytes payload) {
  if (!nodes_.contains(from)) {
    throw NetError("Network::send: sender not attached: " + from);
  }
  ++stats_.sent;
  // Injected link faults (flaps, targeted loss): expressed per directed
  // link as "simnet.link.<from>-><to>"; a window of after_hits/max_fires
  // on a kDrop rule is a flap. Checked before the profile's own loss
  // sampling so an injected schedule never perturbs the seeded RNG.
  if (resilience::active_fault_injector() != nullptr) {
    if (auto f = resilience::fault_check(
            ("simnet.link." + from + "->" + to).c_str())) {
      if (f->kind == resilience::FaultKind::kDrop ||
          f->kind == resilience::FaultKind::kError) {
        ++stats_.lost_on_link;
        AMNESIA_DEBUG("simnet") << from << "->" << to << " lost (injected)";
        return;
      }
    }
  }
  const LinkProfile& link = link_for(from, to);
  if (link.sample_loss(sim_.rng())) {
    ++stats_.lost_on_link;
    AMNESIA_DEBUG("simnet") << from << "->" << to << " lost on link";
    return;
  }
  const Micros delay = link.sample_delay(sim_.rng(), payload.size());
  Message msg{from, to, std::move(payload)};
  sim_.schedule_after(delay, [this, msg = std::move(msg)]() mutable {
    deliver(std::move(msg));
  });
}

void Network::deliver(Message msg) {
  for (auto& tap : taps_) {
    const bool from_match = tap.from.empty() || tap.from == msg.from;
    const bool to_match = tap.to.empty() || tap.to == msg.to;
    if (from_match && to_match) {
      if (tap.fn(sim_.now(), msg) == TapAction::kDrop) {
        ++stats_.dropped_by_tap;
        return;
      }
    }
  }
  const auto it = nodes_.find(msg.to);
  if (it == nodes_.end()) {
    ++stats_.dropped_no_destination;
    AMNESIA_DEBUG("simnet") << msg.from << "->" << msg.to
                            << " dropped: no destination";
    return;
  }
  if (!online(msg.to)) {
    ++stats_.dropped_offline;
    AMNESIA_DEBUG("simnet") << msg.from << "->" << msg.to
                            << " dropped: destination offline";
    return;
  }
  ++stats_.delivered;
  it->second->on_message(msg);
}

std::size_t Network::add_tap(const NodeId& from, const NodeId& to, Tap tap) {
  const std::size_t id = next_tap_id_++;
  taps_.push_back(TapEntry{id, from, to, std::move(tap)});
  return id;
}

void Network::remove_tap(std::size_t tap_id) {
  std::erase_if(taps_, [tap_id](const TapEntry& t) { return t.id == tap_id; });
}

}  // namespace amnesia::simnet
