// Key material bundles K_s, K_p, V_f (paper section III-A).
//
//   K_s = (Oid, {(mu, d, sigma)})          server-side secret
//   V_f = (H(MP,salt), Rid, H(Pid,salt))   server-side functional variables
//   K_p = (Pid, T_E)                       phone-side secret
//
// K_p carries a serialization used verbatim as the cloud-backup blob of
// the phone-compromise recovery protocol (section III-C1).
#pragma once

#include <string>
#include <vector>

#include "core/charset.h"
#include "core/entry_table.h"
#include "core/notation.h"
#include "crypto/password_hash.h"

namespace amnesia::core {

/// One (mu, d, sigma) entry of K_s, plus the per-account policy the paper
/// attaches to the character table.
struct ServerAccount {
  AccountId id;
  Seed seed;
  PasswordPolicy policy;
};

/// The server-side secret for one user.
struct ServerSecrets {
  OnlineId oid;
  std::vector<ServerAccount> accounts;

  const ServerAccount* find(const AccountId& id) const;
};

/// Server-side functional variables for one user.
struct FunctionalVars {
  crypto::PasswordRecord master_password_hash;  // H(MP, salt)
  std::string registration_id;                  // Rid, stored in plaintext
  crypto::PasswordRecord phone_id_hash;         // H(Pid, salt)
};

/// The phone-side secret.
struct PhoneSecrets {
  PhoneId pid;
  EntryTable entry_table;

  /// Backup blob format: u32 version || pid(64) || entry table.
  Bytes serialize() const;
  static PhoneSecrets deserialize(ByteView blob);

  bool operator==(const PhoneSecrets&) const = default;
};

}  // namespace amnesia::core
