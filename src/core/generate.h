// The three core functions of the Amnesia protocol (section III-B).
//
//   make_request      R = SHA256(mu || d || sigma)             (server)
//   generate_token    Algorithm 1: T = SHA256(e_s0 ... e_s15)  (phone)
//   generate_password p = SHA512(T || Oid || sigma), then the
//                     template function maps p onto the account's
//                     character table                            (server)
//
// These are pure functions of their inputs — the same (MP-authenticated
// state, phone secret) pair always regenerates the same password, which is
// what makes Amnesia a *generative* manager with nothing to breach.
//
// Fidelity note: segment indexing uses `segment mod N` exactly as the
// paper specifies. With N = 5000 this is slightly biased (65536 % 5000 !=
// 0); the bias is quantified in bench_sec4e_strength rather than silently
// "fixed" here.
#pragma once

#include <string>

#include "core/charset.h"
#include "core/entry_table.h"
#include "core/notation.h"

namespace amnesia::core {

/// R = SHA256(username || domain || seed) — section III-B2. The seed
/// prevents an eavesdropper on the rendezvous path from confirming which
/// account the request is for (section IV-B).
Request make_request(const AccountId& account, const Seed& seed);

/// Algorithm 1. Splits R's 64 hex digits into 16 segments of 4, indexes
/// the entry table with (segment mod N), concatenates the chosen entries,
/// and hashes: T = SHA256(e_i0 || ... || e_i15).
Token generate_token(const Request& request, const EntryTable& table);

/// The indices Algorithm 1 would select (exposed for tests and for the
/// bias analysis in the strength bench).
std::vector<std::size_t> token_indices(const Request& request,
                                       std::size_t table_size);

/// Intermediate value p = SHA512(T || Oid || sigma) — section III-B4.
Bytes intermediate_value(const Token& token, const OnlineId& oid,
                         const Seed& seed);

/// The template function: splits p's 128 hex digits into 32 segments of 4
/// and maps each onto the policy's character table; the result is then
/// truncated to the policy length.
std::string template_function(ByteView intermediate,
                              const PasswordPolicy& policy);

/// Full server-side password computation from a received token.
std::string generate_password(const Token& token, const OnlineId& oid,
                              const Seed& seed, const PasswordPolicy& policy);

/// Convenience for tests/analysis: the whole pipeline in one place, as if
/// server and phone state were co-located.
std::string end_to_end_password(const AccountId& account, const Seed& seed,
                                const OnlineId& oid, const EntryTable& table,
                                const PasswordPolicy& policy);

}  // namespace amnesia::core
