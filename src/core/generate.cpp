#include "core/generate.h"

#include "crypto/sha256.h"
#include "crypto/sha512.h"

namespace amnesia::core {

namespace {

/// One 4-hex-digit segment of a digest is the big-endian 16-bit word at
/// byte offset 2i — identical to interpreting hex(digest)[4i:4i+4] as a
/// number, which is how the paper (and Algorithm 1) phrases it.
std::size_t segment_at(ByteView digest, std::size_t i) {
  return (static_cast<std::size_t>(digest[2 * i]) << 8) |
         static_cast<std::size_t>(digest[2 * i + 1]);
}

}  // namespace

Request make_request(const AccountId& account, const Seed& seed) {
  return Request(crypto::sha256_concat({to_bytes(account.username),
                                        to_bytes(account.domain),
                                        seed.bytes()}));
}

std::vector<std::size_t> token_indices(const Request& request,
                                       std::size_t table_size) {
  std::vector<std::size_t> indices;
  indices.reserve(Params::kRequestSegments);
  for (std::size_t i = 0; i < Params::kRequestSegments; ++i) {
    indices.push_back(segment_at(request.bytes(), i) % table_size);
  }
  return indices;
}

Token generate_token(const Request& request, const EntryTable& table) {
  crypto::Sha256 hasher;
  for (const std::size_t index : token_indices(request, table.size())) {
    hasher.update(table.entry(index).bytes());
  }
  return Token(hasher.finish());
}

Bytes intermediate_value(const Token& token, const OnlineId& oid,
                         const Seed& seed) {
  return crypto::sha512_concat({token.bytes(), oid.bytes(), seed.bytes()});
}

std::string template_function(ByteView intermediate,
                              const PasswordPolicy& policy) {
  policy.validate();
  std::string password;
  password.reserve(Params::kPasswordSegments);
  for (std::size_t i = 0; i < Params::kPasswordSegments; ++i) {
    const std::size_t g = segment_at(intermediate, i);
    password.push_back(policy.charset.at(g % policy.charset.size()));
  }
  // "the remaining characters that exceed the defined length are simply
  // discarded" (section III-B4).
  password.resize(std::min(password.size(), policy.length));
  return password;
}

std::string generate_password(const Token& token, const OnlineId& oid,
                              const Seed& seed, const PasswordPolicy& policy) {
  return template_function(intermediate_value(token, oid, seed), policy);
}

std::string end_to_end_password(const AccountId& account, const Seed& seed,
                                const OnlineId& oid, const EntryTable& table,
                                const PasswordPolicy& policy) {
  const Request request = make_request(account, seed);
  const Token token = generate_token(request, table);
  return generate_password(token, oid, seed, policy);
}

}  // namespace amnesia::core
