#include "core/entry_table.h"

#include "common/error.h"
#include "storage/codec.h"

namespace amnesia::core {

EntryTable::EntryTable(std::vector<EntryValue> entries)
    : entries_(std::move(entries)) {
  if (entries_.empty() || entries_.size() > 65536) {
    throw ProtocolError("EntryTable: size must be in [1, 65536]");
  }
}

EntryTable EntryTable::generate(RandomSource& rng, std::size_t size) {
  Params params;
  params.entry_table_size = size;
  params.validate();
  std::vector<EntryValue> entries;
  entries.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    entries.push_back(EntryValue::generate(rng));
  }
  return EntryTable(std::move(entries));
}

Bytes EntryTable::serialize() const {
  storage::BufWriter w;
  w.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& e : entries_) {
    w.raw(e.bytes());
  }
  return w.take();
}

EntryTable EntryTable::deserialize(ByteView data) {
  storage::BufReader r(data);
  const std::uint32_t count = r.u32();
  if (r.remaining() != static_cast<std::size_t>(count) * EntryValue::kSize) {
    throw FormatError("EntryTable: truncated or oversized payload");
  }
  std::vector<EntryValue> entries;
  entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Bytes value;
    value.reserve(EntryValue::kSize);
    for (std::size_t b = 0; b < EntryValue::kSize; ++b) {
      value.push_back(r.u8());
    }
    entries.push_back(EntryValue(std::move(value)));
  }
  return EntryTable(std::move(entries));
}

}  // namespace amnesia::core
