// Wire messages between Amnesia components (paper Fig. 1).
//
// PasswordRequestPush is the payload the server hands to the rendezvous
// service (step 3): the request R, the IP of the computer that originated
// the request (shown to the user for verification, per section V-B and
// Fig. 2b), and the tstart timestamp the latency evaluation adds (section
// VI-B). Deliberately absent: any account identifier — a rendezvous
// eavesdropper or the phone itself cannot tell which account R targets
// (sections IV-B, IV-D).
//
// The phone answers over its own HTTPS leg with a token submission.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/clock.h"
#include "core/notation.h"

namespace amnesia::core {

struct PasswordRequestPush {
  std::uint64_t request_id = 0;  // correlates the token reply
  Request request;               // R
  std::string origin_ip;         // requesting computer, for user consent
  Micros tstart_us = 0;          // latency-measurement timestamp
  std::string trace;             // optional serialized obs::TraceContext

  Bytes encode() const;
  /// Returns nullopt on malformed payloads (never throws on wire data).
  static std::optional<PasswordRequestPush> decode(ByteView wire);
};

struct TokenSubmission {
  std::uint64_t request_id = 0;
  Token token;
  Micros tstart_us = 0;  // echoed back for the latency computation

  Bytes encode() const;
  static std::optional<TokenSubmission> decode(ByteView wire);
};

}  // namespace amnesia::core
