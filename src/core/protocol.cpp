#include "core/protocol.h"

#include "common/error.h"
#include "storage/codec.h"

namespace amnesia::core {

namespace {

Bytes read_fixed(storage::BufReader& r, std::size_t n) {
  Bytes out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(r.u8());
  return out;
}

}  // namespace

Bytes PasswordRequestPush::encode() const {
  storage::BufWriter w;
  w.u64(request_id);
  w.raw(request.bytes());
  w.str(origin_ip);
  w.i64(tstart_us);
  if (!trace.empty()) w.str(trace);
  return w.take();
}

std::optional<PasswordRequestPush> PasswordRequestPush::decode(ByteView wire) {
  try {
    storage::BufReader r(wire);
    const std::uint64_t request_id = r.u64();
    Request request(read_fixed(r, Request::kSize));
    std::string origin_ip = r.str();
    const Micros tstart = r.i64();
    std::string trace;
    if (!r.done()) trace = r.str();  // optional trailing trace context
    if (!r.done()) return std::nullopt;
    return PasswordRequestPush{request_id, std::move(request),
                               std::move(origin_ip), tstart,
                               std::move(trace)};
  } catch (const Error&) {
    return std::nullopt;
  }
}

Bytes TokenSubmission::encode() const {
  storage::BufWriter w;
  w.u64(request_id);
  w.raw(token.bytes());
  w.i64(tstart_us);
  return w.take();
}

std::optional<TokenSubmission> TokenSubmission::decode(ByteView wire) {
  try {
    storage::BufReader r(wire);
    const std::uint64_t request_id = r.u64();
    Token token(read_fixed(r, Token::kSize));
    const Micros tstart = r.i64();
    if (!r.done()) return std::nullopt;
    return TokenSubmission{request_id, std::move(token), tstart};
  } catch (const Error&) {
    return std::nullopt;
  }
}

}  // namespace amnesia::core
