// Protocol notation (paper section III).
//
// Strong types for the values the paper names:
//   Oid   512-bit online ID, static and unique per Amnesia account
//   Pid   512-bit phone ID, regenerated on every app install
//   sigma 256-bit per-website-account seed
//   R     password request, SHA-256 output
//   T     token, SHA-256 output
//   MP    master password (a user string; never stored in the clear)
//
// Each wrapper validates its size at construction so a mixed-up argument
// fails loudly instead of silently truncating entropy.
#pragma once

#include <string>

#include "common/bytes.h"
#include "common/error.h"
#include "common/rng.h"

namespace amnesia::core {

namespace detail {

template <std::size_t N, typename Tag>
class FixedSecret {
 public:
  static constexpr std::size_t kSize = N;

  explicit FixedSecret(Bytes value) : value_(std::move(value)) {
    if (value_.size() != N) {
      throw ProtocolError(std::string(Tag::kName) + ": expected " +
                          std::to_string(N) + " bytes, got " +
                          std::to_string(value_.size()));
    }
  }

  static FixedSecret generate(RandomSource& rng) {
    return FixedSecret(rng.bytes(N));
  }

  static FixedSecret from_hex(const std::string& hex) {
    return FixedSecret(hex_decode(hex));
  }

  const Bytes& bytes() const { return value_; }
  std::string hex() const { return hex_encode(value_); }

  bool operator==(const FixedSecret&) const = default;

 private:
  Bytes value_;
};

struct OidTag { static constexpr const char* kName = "Oid"; };
struct PidTag { static constexpr const char* kName = "Pid"; };
struct SeedTag { static constexpr const char* kName = "Seed"; };
struct RequestTag { static constexpr const char* kName = "Request"; };
struct TokenTag { static constexpr const char* kName = "Token"; };
struct EntryTag { static constexpr const char* kName = "EntryValue"; };

}  // namespace detail

/// 512-bit online ID O_id (Table I).
using OnlineId = detail::FixedSecret<64, detail::OidTag>;

/// 512-bit phone ID P_id (Table I / II).
using PhoneId = detail::FixedSecret<64, detail::PidTag>;

/// 256-bit per-account seed sigma.
using Seed = detail::FixedSecret<32, detail::SeedTag>;

/// Password request R = SHA256(u || d || sigma); 32 bytes = 64 hex digits.
using Request = detail::FixedSecret<32, detail::RequestTag>;

/// Token T = SHA256(e_i0 || ... || e_i15).
using Token = detail::FixedSecret<32, detail::TokenTag>;

/// One 256-bit entry value e_i of the phone's entry table (Table II).
using EntryValue = detail::FixedSecret<32, detail::EntryTag>;

/// A website account is identified by (username mu, domain d) — paper
/// section III-A2. The domain "can be anything that identifies a website".
struct AccountId {
  std::string username;
  std::string domain;

  bool operator==(const AccountId&) const = default;
  bool operator<(const AccountId& other) const {
    if (domain != other.domain) return domain < other.domain;
    return username < other.username;
  }
};

/// Protocol-wide constants from section III.
struct Params {
  /// Entry-table size N; the paper fixes 5000 and notes 16^l >= N must
  /// hold for l = 4 hex digits per segment.
  std::size_t entry_table_size = 5000;
  /// Number of 4-hex-digit segments taken from R (SHA-256 => 16).
  static constexpr std::size_t kRequestSegments = 16;
  /// Number of 4-hex-digit segments taken from p (SHA-512 => 32).
  static constexpr std::size_t kPasswordSegments = 32;
  /// Maximum (and default) generated password length.
  static constexpr std::size_t kMaxPasswordLength = 32;

  void validate() const {
    if (entry_table_size == 0 || entry_table_size > 65536) {
      // 16^4 = 65536 is the largest table a 4-hex-digit segment can cover.
      throw ProtocolError("Params: entry_table_size must be in [1, 65536]");
    }
  }
};

}  // namespace amnesia::core
