// Entry table T_E (paper section III-A3, Table II).
//
// The Amnesia mobile application holds N random 256-bit entry values; the
// token generator selects 16 of them, indexed by segments of the request
// R. The paper fixes N = 5000, giving 5000^16 ~ 1.53e59 distinct tokens.
#pragma once

#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "core/notation.h"

namespace amnesia::core {

class EntryTable {
 public:
  /// Generates a fresh table of `size` random 256-bit entries.
  static EntryTable generate(RandomSource& rng,
                             std::size_t size = Params{}.entry_table_size);

  /// Rebuilds a table from serialized bytes (cloud backup restore).
  static EntryTable deserialize(ByteView data);

  explicit EntryTable(std::vector<EntryValue> entries);

  std::size_t size() const { return entries_.size(); }
  const EntryValue& entry(std::size_t index) const { return entries_.at(index); }
  const std::vector<EntryValue>& entries() const { return entries_; }

  /// Flat serialization: u32 count || count * 32 bytes.
  Bytes serialize() const;

  bool operator==(const EntryTable&) const = default;

 private:
  std::vector<EntryValue> entries_;
};

}  // namespace amnesia::core
