// Character table T_c and per-account password policy (section III-B4).
//
// The default table holds the 94 printable ASCII characters (lowercase,
// uppercase, digits, specials). The paper lets the user adjust the set per
// account "to adapt to various website password policy" — e.g. exclude
// special characters — and limit the length (excess characters are simply
// discarded).
#pragma once

#include <string>

#include "common/error.h"
#include "core/notation.h"

namespace amnesia::core {

class CharacterTable {
 public:
  /// The paper's default: all 94 printable ASCII characters ('!'..'~').
  static CharacterTable default_table();

  /// Builds a table from category switches; at least one must be on.
  static CharacterTable from_categories(bool lowercase, bool uppercase,
                                        bool digits, bool specials);

  /// Builds a table from an explicit character string (deduplicated,
  /// order-preserving). Throws ProtocolError if empty.
  static CharacterTable custom(const std::string& characters);

  std::size_t size() const { return chars_.size(); }
  char at(std::size_t index) const { return chars_.at(index); }
  const std::string& characters() const { return chars_; }
  bool contains(char c) const { return chars_.find(c) != std::string::npos; }

 private:
  explicit CharacterTable(std::string chars);

  std::string chars_;
};

/// Per-account password policy: which characters may appear and how long
/// the emitted password is.
struct PasswordPolicy {
  CharacterTable charset = CharacterTable::default_table();
  std::size_t length = Params::kMaxPasswordLength;

  void validate() const {
    if (length == 0 || length > Params::kMaxPasswordLength) {
      throw ProtocolError("PasswordPolicy: length must be in [1, 32]");
    }
  }

  /// Stable textual encoding "length:characters" for storage alongside the
  /// account entry.
  std::string encode() const;
  static PasswordPolicy decode(const std::string& encoded);
};

}  // namespace amnesia::core
