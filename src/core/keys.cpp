#include "core/keys.h"

#include "common/error.h"
#include "storage/codec.h"

namespace amnesia::core {

namespace {
constexpr std::uint32_t kBackupVersion = 1;
}

const ServerAccount* ServerSecrets::find(const AccountId& id) const {
  for (const auto& account : accounts) {
    if (account.id == id) return &account;
  }
  return nullptr;
}

Bytes PhoneSecrets::serialize() const {
  storage::BufWriter w;
  w.u32(kBackupVersion);
  w.raw(pid.bytes());
  w.raw(entry_table.serialize());
  return w.take();
}

PhoneSecrets PhoneSecrets::deserialize(ByteView blob) {
  storage::BufReader r(blob);
  if (r.u32() != kBackupVersion) {
    throw FormatError("PhoneSecrets: unsupported backup version");
  }
  Bytes pid_bytes;
  pid_bytes.reserve(PhoneId::kSize);
  for (std::size_t i = 0; i < PhoneId::kSize; ++i) pid_bytes.push_back(r.u8());
  // The remainder is the entry table.
  Bytes rest;
  rest.reserve(r.remaining());
  while (!r.done()) rest.push_back(r.u8());
  return PhoneSecrets{PhoneId(std::move(pid_bytes)),
                      EntryTable::deserialize(rest)};
}

}  // namespace amnesia::core
