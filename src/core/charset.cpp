#include "core/charset.h"

namespace amnesia::core {

namespace {

const char kLower[] = "abcdefghijklmnopqrstuvwxyz";
const char kUpper[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";
const char kDigits[] = "0123456789";
const char kSpecials[] = "!\"#$%&'()*+,-./:;<=>?@[\\]^_`{|}~";

}  // namespace

CharacterTable::CharacterTable(std::string chars) : chars_(std::move(chars)) {
  if (chars_.empty()) {
    throw ProtocolError("CharacterTable: empty character set");
  }
}

CharacterTable CharacterTable::default_table() {
  // '!' (33) .. '~' (126): exactly the 94 printable non-space characters.
  std::string chars;
  chars.reserve(94);
  for (char c = '!'; c <= '~'; ++c) chars.push_back(c);
  return CharacterTable(std::move(chars));
}

CharacterTable CharacterTable::from_categories(bool lowercase, bool uppercase,
                                               bool digits, bool specials) {
  std::string chars;
  if (lowercase) chars += kLower;
  if (uppercase) chars += kUpper;
  if (digits) chars += kDigits;
  if (specials) chars += kSpecials;
  if (chars.empty()) {
    throw ProtocolError("CharacterTable: no categories selected");
  }
  return CharacterTable(std::move(chars));
}

CharacterTable CharacterTable::custom(const std::string& characters) {
  std::string deduped;
  for (char c : characters) {
    if (deduped.find(c) == std::string::npos) deduped.push_back(c);
  }
  return CharacterTable(std::move(deduped));
}

std::string PasswordPolicy::encode() const {
  return std::to_string(length) + ":" + charset.characters();
}

PasswordPolicy PasswordPolicy::decode(const std::string& encoded) {
  const std::size_t colon = encoded.find(':');
  if (colon == std::string::npos) {
    throw FormatError("PasswordPolicy: missing ':' separator");
  }
  std::size_t length = 0;
  try {
    length = std::stoul(encoded.substr(0, colon));
  } catch (const std::exception&) {
    throw FormatError("PasswordPolicy: bad length field");
  }
  PasswordPolicy policy{CharacterTable::custom(encoded.substr(colon + 1)),
                        length};
  policy.validate();
  return policy;
}

}  // namespace amnesia::core
