// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Amnesia uses SHA-256 for the password request R = H(u || d || sigma) and
// the token T = H(e_0 || ... || e_15) (paper section III-B). The class is a
// conventional streaming hasher; sha256() is the one-shot convenience.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace amnesia::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  using Digest = std::array<std::uint8_t, kDigestSize>;

  /// A saved compression state: the eight chaining words plus the number
  /// of bytes absorbed so far. Valid only at a block boundary. HMAC uses
  /// this to precompute the key-pad absorption once and replay it for
  /// free on every reset (see hmac.h).
  struct Midstate {
    std::array<std::uint32_t, 8> h;
    std::uint64_t total_bytes = 0;
  };

  Sha256();

  /// Absorbs more input. May be called any number of times.
  void update(ByteView data);

  /// Finalizes and returns the 32-byte digest. The hasher must not be
  /// reused afterwards without reset().
  Bytes finish();

  /// Allocation-free finalize: writes the 32-byte digest to `out`.
  void finish_into(std::uint8_t* out);

  /// Allocation-free finalize into a fixed-size array.
  Digest finish_digest();

  /// Returns the hasher to its initial state.
  void reset();

  /// Captures the compression state. Only legal at a block boundary
  /// (bytes absorbed so far divisible by 64); throws CryptoError
  /// otherwise, and if already finished.
  Midstate save_midstate() const;

  /// Restores a saved state; the hasher continues as if it had just
  /// absorbed that many bytes. Clears any finished/buffered state.
  void restore_midstate(const Midstate& m);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

/// One-shot SHA-256.
Bytes sha256(ByteView data);

/// One-shot SHA-256 over the concatenation of `parts`.
Bytes sha256_concat(std::initializer_list<ByteView> parts);

}  // namespace amnesia::crypto
