// Crypto-layer load counters.
//
// The crypto substrate has no natural owner object to hang a registry on
// (PBKDF2 is a free function called from the server, the attack harness,
// and every baseline vault), so the layer exposes one process-wide
// registry hook. The server wires its registry in at construction so the
// /metrics endpoint reports crypto-layer load next to the protocol
// counters:
//
//   crypto.pbkdf2_calls       completed pbkdf2_hmac_sha256 derivations
//   crypto.pbkdf2_iterations  total HMAC iterations spent in them
//
// When several registries exist (multi-server tests), the last one wired
// wins; pass nullptr to detach. Not thread-safe: wire once at startup,
// before concurrent crypto use.
#pragma once

#include <cstdint>

#include "obs/metrics.h"

namespace amnesia::crypto {

/// Installs (or, with nullptr, detaches) the registry that crypto-layer
/// counters report to.
void set_crypto_metrics(obs::MetricsRegistry* registry);

/// Detaches only if `registry` is the currently wired one. Owners call
/// this on destruction so the hook never dangles into a dead registry.
void detach_crypto_metrics(obs::MetricsRegistry* registry);

namespace detail {

/// Counter handles resolved once per set_crypto_metrics() call; null when
/// no registry is wired.
struct CryptoCounters {
  obs::MetricsRegistry* registry = nullptr;
  obs::Counter* pbkdf2_calls = nullptr;
  obs::Counter* pbkdf2_iterations = nullptr;
};

const CryptoCounters& crypto_counters();

}  // namespace detail

}  // namespace amnesia::crypto
