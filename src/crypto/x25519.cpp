#include "crypto/x25519.h"

#include <cstring>

#include "common/error.h"

// Field arithmetic over GF(2^255 - 19) in five 51-bit limbs with 128-bit
// intermediates, following the structure of the public-domain
// curve25519-donna-c64 reference. The Montgomery ladder is branch-free:
// the secret scalar only drives constant-time conditional swaps.

namespace amnesia::crypto {

namespace {

using limb = std::uint64_t;
using uint128 = unsigned __int128;
using felem = limb[5];

constexpr limb kMask51 = 0x7ffffffffffffULL;

std::uint64_t load64_le(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;  // little-endian hosts only; fine for this x86-64 target
}

void store64_le(std::uint8_t* p, std::uint64_t v) { std::memcpy(p, &v, 8); }

void fexpand(felem out, const std::uint8_t* in) {
  out[0] = load64_le(in) & kMask51;
  out[1] = (load64_le(in + 6) >> 3) & kMask51;
  out[2] = (load64_le(in + 12) >> 6) & kMask51;
  out[3] = (load64_le(in + 19) >> 1) & kMask51;
  out[4] = (load64_le(in + 24) >> 12) & kMask51;  // drops bit 255 per RFC
}

void fsum(felem out, const felem in) {
  for (int i = 0; i < 5; ++i) out[i] += in[i];
}

// out = in - out. The 8p bias keeps every limb non-negative.
void fdifference_backwards(felem out, const felem in) {
  constexpr limb kTwo54m152 = (1ULL << 54) - 152;  // 8 * (2^51 - 19)
  constexpr limb kTwo54m8 = (1ULL << 54) - 8;      // 8 * (2^51 - 1)
  out[0] = in[0] + kTwo54m152 - out[0];
  out[1] = in[1] + kTwo54m8 - out[1];
  out[2] = in[2] + kTwo54m8 - out[2];
  out[3] = in[3] + kTwo54m8 - out[3];
  out[4] = in[4] + kTwo54m8 - out[4];
}

void fscalar_product(felem out, const felem in, limb scalar) {
  uint128 a = static_cast<uint128>(in[0]) * scalar;
  out[0] = static_cast<limb>(a) & kMask51;
  for (int i = 1; i < 5; ++i) {
    a = static_cast<uint128>(in[i]) * scalar + static_cast<limb>(a >> 51);
    out[i] = static_cast<limb>(a) & kMask51;
  }
  out[0] += static_cast<limb>(a >> 51) * 19;
}

void fmul(felem out, const felem in2, const felem in) {
  limb r0 = in[0], r1 = in[1], r2 = in[2], r3 = in[3], r4 = in[4];
  const limb s0 = in2[0], s1 = in2[1], s2 = in2[2], s3 = in2[3], s4 = in2[4];

  uint128 t[5];
  t[0] = static_cast<uint128>(r0) * s0;
  t[1] = static_cast<uint128>(r0) * s1 + static_cast<uint128>(r1) * s0;
  t[2] = static_cast<uint128>(r0) * s2 + static_cast<uint128>(r2) * s0 +
         static_cast<uint128>(r1) * s1;
  t[3] = static_cast<uint128>(r0) * s3 + static_cast<uint128>(r3) * s0 +
         static_cast<uint128>(r1) * s2 + static_cast<uint128>(r2) * s1;
  t[4] = static_cast<uint128>(r0) * s4 + static_cast<uint128>(r4) * s0 +
         static_cast<uint128>(r3) * s1 + static_cast<uint128>(r1) * s3 +
         static_cast<uint128>(r2) * s2;

  r4 *= 19;
  r1 *= 19;
  r2 *= 19;
  r3 *= 19;

  t[0] += static_cast<uint128>(r4) * s1 + static_cast<uint128>(r1) * s4 +
          static_cast<uint128>(r2) * s3 + static_cast<uint128>(r3) * s2;
  t[1] += static_cast<uint128>(r4) * s2 + static_cast<uint128>(r2) * s4 +
          static_cast<uint128>(r3) * s3;
  t[2] += static_cast<uint128>(r4) * s3 + static_cast<uint128>(r3) * s4;
  t[3] += static_cast<uint128>(r4) * s4;

  limb c;
  r0 = static_cast<limb>(t[0]) & kMask51;
  c = static_cast<limb>(t[0] >> 51);
  t[1] += c;
  r1 = static_cast<limb>(t[1]) & kMask51;
  c = static_cast<limb>(t[1] >> 51);
  t[2] += c;
  r2 = static_cast<limb>(t[2]) & kMask51;
  c = static_cast<limb>(t[2] >> 51);
  t[3] += c;
  r3 = static_cast<limb>(t[3]) & kMask51;
  c = static_cast<limb>(t[3] >> 51);
  t[4] += c;
  r4 = static_cast<limb>(t[4]) & kMask51;
  c = static_cast<limb>(t[4] >> 51);
  r0 += c * 19;
  c = r0 >> 51;
  r0 &= kMask51;
  r1 += c;

  out[0] = r0;
  out[1] = r1;
  out[2] = r2;
  out[3] = r3;
  out[4] = r4;
}

void fsquare_times(felem out, const felem in, int count) {
  limb r0 = in[0], r1 = in[1], r2 = in[2], r3 = in[3], r4 = in[4];
  do {
    const limb d0 = r0 * 2;
    const limb d1 = r1 * 2;
    const limb d2 = r2 * 2 * 19;
    const limb d419 = r4 * 19;
    const limb d4 = d419 * 2;

    uint128 t[5];
    t[0] = static_cast<uint128>(r0) * r0 + static_cast<uint128>(d4) * r1 +
           static_cast<uint128>(d2) * r3;
    t[1] = static_cast<uint128>(d0) * r1 + static_cast<uint128>(d4) * r2 +
           static_cast<uint128>(r3) * (r3 * 19);
    t[2] = static_cast<uint128>(d0) * r2 + static_cast<uint128>(r1) * r1 +
           static_cast<uint128>(d4) * r3;
    t[3] = static_cast<uint128>(d0) * r3 + static_cast<uint128>(d1) * r2 +
           static_cast<uint128>(r4) * d419;
    t[4] = static_cast<uint128>(d0) * r4 + static_cast<uint128>(d1) * r3 +
           static_cast<uint128>(r2) * r2;

    limb c;
    r0 = static_cast<limb>(t[0]) & kMask51;
    c = static_cast<limb>(t[0] >> 51);
    t[1] += c;
    r1 = static_cast<limb>(t[1]) & kMask51;
    c = static_cast<limb>(t[1] >> 51);
    t[2] += c;
    r2 = static_cast<limb>(t[2]) & kMask51;
    c = static_cast<limb>(t[2] >> 51);
    t[3] += c;
    r3 = static_cast<limb>(t[3]) & kMask51;
    c = static_cast<limb>(t[3] >> 51);
    t[4] += c;
    r4 = static_cast<limb>(t[4]) & kMask51;
    c = static_cast<limb>(t[4] >> 51);
    r0 += c * 19;
    c = r0 >> 51;
    r0 &= kMask51;
    r1 += c;
  } while (--count > 0);

  out[0] = r0;
  out[1] = r1;
  out[2] = r2;
  out[3] = r3;
  out[4] = r4;
}

// Fully reduces and serializes to 32 little-endian bytes.
void fcontract(std::uint8_t* out, const felem input) {
  uint128 t[5];
  for (int i = 0; i < 5; ++i) t[i] = input[i];

  auto carry_pass = [&t] {
    t[1] += t[0] >> 51;
    t[0] &= kMask51;
    t[2] += t[1] >> 51;
    t[1] &= kMask51;
    t[3] += t[2] >> 51;
    t[2] &= kMask51;
    t[4] += t[3] >> 51;
    t[3] &= kMask51;
    t[0] += 19 * static_cast<limb>(t[4] >> 51);
    t[4] &= kMask51;
  };
  carry_pass();
  carry_pass();

  // t < 2^255; add 19 to detect values in [p, 2^255).
  t[0] += 19;
  carry_pass();

  // Offset by 2^255 - 19 (i.e. add p), then the carry out of the top limb
  // is exactly the "t >= p" bit and is discarded.
  t[0] += (1ULL << 51) - 19;
  t[1] += (1ULL << 51) - 1;
  t[2] += (1ULL << 51) - 1;
  t[3] += (1ULL << 51) - 1;
  t[4] += (1ULL << 51) - 1;

  t[1] += t[0] >> 51;
  t[0] &= kMask51;
  t[2] += t[1] >> 51;
  t[1] &= kMask51;
  t[3] += t[2] >> 51;
  t[2] &= kMask51;
  t[4] += t[3] >> 51;
  t[3] &= kMask51;
  t[4] &= kMask51;  // discard carry: subtracts the 2^255 offset

  const limb l0 = static_cast<limb>(t[0]);
  const limb l1 = static_cast<limb>(t[1]);
  const limb l2 = static_cast<limb>(t[2]);
  const limb l3 = static_cast<limb>(t[3]);
  const limb l4 = static_cast<limb>(t[4]);
  store64_le(out, l0 | (l1 << 51));
  store64_le(out + 8, (l1 >> 13) | (l2 << 38));
  store64_le(out + 16, (l2 >> 26) | (l3 << 25));
  store64_le(out + 24, (l3 >> 39) | (l4 << 12));
}

void swap_conditional(felem a, felem b, limb swap) {
  const limb mask = 0 - swap;  // all-ones when swap == 1
  for (int i = 0; i < 5; ++i) {
    const limb x = mask & (a[i] ^ b[i]);
    a[i] ^= x;
    b[i] ^= x;
  }
}

// One Montgomery ladder step: given Q, Q', and Q-Q' (affine x), computes
// 2Q and Q+Q'.
void fmonty(felem x2, felem z2, felem x3, felem z3, felem x, felem z,
            felem xprime, felem zprime, const felem qmqp) {
  felem origx, origxprime, zzz, xx, zz, xxprime, zzprime, zzzprime;

  std::memcpy(origx, x, sizeof(felem));
  fsum(x, z);
  fdifference_backwards(z, origx);  // z = origx - z

  std::memcpy(origxprime, xprime, sizeof(felem));
  fsum(xprime, zprime);
  fdifference_backwards(zprime, origxprime);
  fmul(xxprime, xprime, z);
  fmul(zzprime, x, zprime);
  std::memcpy(origxprime, xxprime, sizeof(felem));
  fsum(xxprime, zzprime);
  fdifference_backwards(zzprime, origxprime);
  fsquare_times(x3, xxprime, 1);
  fsquare_times(zzzprime, zzprime, 1);
  fmul(z3, zzzprime, qmqp);

  fsquare_times(xx, x, 1);
  fsquare_times(zz, z, 1);
  fmul(x2, xx, zz);
  fdifference_backwards(zz, xx);  // zz = xx - zz
  fscalar_product(zzz, zz, 121665);
  fsum(zzz, xx);
  fmul(z2, zz, zzz);
}

// Computes z^-1 = z^(p-2) with the standard addition chain.
void crecip(felem out, const felem z) {
  felem a, t0, b, c;
  fsquare_times(a, z, 1);      // 2
  fsquare_times(t0, a, 2);     // 8
  fmul(b, t0, z);              // 9
  fmul(a, b, a);               // 11
  fsquare_times(t0, a, 1);     // 22
  fmul(b, t0, b);              // 2^5 - 1
  fsquare_times(t0, b, 5);     // 2^10 - 2^5
  fmul(b, t0, b);              // 2^10 - 1
  fsquare_times(t0, b, 10);    // 2^20 - 2^10
  fmul(c, t0, b);              // 2^20 - 1
  fsquare_times(t0, c, 20);    // 2^40 - 2^20
  fmul(t0, t0, c);             // 2^40 - 1
  fsquare_times(t0, t0, 10);   // 2^50 - 2^10
  fmul(b, t0, b);              // 2^50 - 1
  fsquare_times(t0, b, 50);    // 2^100 - 2^50
  fmul(c, t0, b);              // 2^100 - 1
  fsquare_times(t0, c, 100);   // 2^200 - 2^100
  fmul(t0, t0, c);             // 2^200 - 1
  fsquare_times(t0, t0, 50);   // 2^250 - 2^50
  fmul(t0, t0, b);             // 2^250 - 1
  fsquare_times(t0, t0, 5);    // 2^255 - 2^5
  fmul(out, t0, a);            // 2^255 - 21 = p - 2
}

void cmult(felem resultx, felem resultz, const std::uint8_t* n,
           const felem q) {
  felem a = {0}, b = {1}, c = {1}, d = {0};
  felem e = {0}, f = {1}, g = {0}, h = {1};
  limb* nqpqx = a;
  limb* nqpqz = b;
  limb* nqx = c;
  limb* nqz = d;
  limb* nqpqx2 = e;
  limb* nqpqz2 = f;
  limb* nqx2 = g;
  limb* nqz2 = h;

  std::memcpy(nqpqx, q, sizeof(felem));

  for (int i = 0; i < 32; ++i) {
    std::uint8_t byte = n[31 - i];
    for (int j = 0; j < 8; ++j) {
      const limb bit = byte >> 7;
      swap_conditional(nqx, nqpqx, bit);
      swap_conditional(nqz, nqpqz, bit);
      fmonty(nqx2, nqz2, nqpqx2, nqpqz2, nqx, nqz, nqpqx, nqpqz, q);
      swap_conditional(nqx2, nqpqx2, bit);
      swap_conditional(nqz2, nqpqz2, bit);

      std::swap(nqx, nqx2);
      std::swap(nqz, nqz2);
      std::swap(nqpqx, nqpqx2);
      std::swap(nqpqz, nqpqz2);
      byte = static_cast<std::uint8_t>(byte << 1);
    }
  }
  std::memcpy(resultx, nqx, sizeof(felem));
  std::memcpy(resultz, nqz, sizeof(felem));
}

}  // namespace

X25519Key x25519(ByteView scalar, ByteView point) {
  if (scalar.size() != kX25519KeySize || point.size() != kX25519KeySize) {
    throw CryptoError("x25519: inputs must be 32 bytes");
  }
  std::uint8_t e[32];
  std::memcpy(e, scalar.data(), 32);
  e[0] &= 248;
  e[31] &= 127;
  e[31] |= 64;

  felem bp, x, z, zmone;
  fexpand(bp, point.data());
  cmult(x, z, e, bp);
  crecip(zmone, z);
  fmul(z, x, zmone);

  X25519Key out;
  fcontract(out.data(), z);
  return out;
}

X25519Key x25519_base(ByteView scalar) {
  static constexpr std::uint8_t kBasePoint[32] = {9};
  return x25519(scalar, ByteView(kBasePoint, 32));
}

X25519KeyPair x25519_generate(RandomSource& rng) {
  X25519KeyPair kp;
  const Bytes priv = rng.bytes(kX25519KeySize);
  std::memcpy(kp.private_key.data(), priv.data(), kX25519KeySize);
  kp.public_key = x25519_base(kp.private_key);
  return kp;
}

}  // namespace amnesia::crypto
