// HMAC (RFC 2104) over the project's SHA-2 implementations.
//
// HMAC-SHA256 is used by the secure-channel key schedule (via HKDF) and by
// PBKDF2 for master-password hashing; HMAC-SHA512 is provided for
// completeness and used by the LastPass-style baseline vault.
//
// The key schedule is computed exactly once: the constructor absorbs
// key^ipad and key^opad and saves both compression midstates, so reset()
// is a register copy instead of re-hashing a key block, and finish() costs
// one outer compression instead of a full outer pass. This is what makes
// PBKDF2's inner loop exactly two compression calls per iteration.
#pragma once

#include "common/bytes.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"

namespace amnesia::crypto {

/// Streaming HMAC over any hash type exposing kDigestSize/kBlockSize,
/// update(), finish_into(), save_midstate(), restore_midstate().
template <typename Hash>
class Hmac {
 public:
  static constexpr std::size_t kDigestSize = Hash::kDigestSize;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  explicit Hmac(ByteView key) {
    std::array<std::uint8_t, Hash::kBlockSize> pad;
    std::array<std::uint8_t, Hash::kDigestSize> key_hash;
    const std::uint8_t* k = key.data();
    std::size_t k_len = key.size();
    if (k_len > Hash::kBlockSize) {
      Hash h;
      h.update(key);
      h.finish_into(key_hash.data());
      k = key_hash.data();
      k_len = Hash::kDigestSize;
    }
    for (std::size_t i = 0; i < Hash::kBlockSize; ++i) {
      pad[i] = (i < k_len ? k[i] : 0) ^ 0x36;
    }
    inner_.update(ByteView(pad.data(), pad.size()));
    inner_mid_ = inner_.save_midstate();
    for (auto& b : pad) b ^= 0x36 ^ 0x5c;
    Hash outer;
    outer.update(ByteView(pad.data(), pad.size()));
    outer_mid_ = outer.save_midstate();
    secure_wipe(pad.data(), pad.size());
    secure_wipe(key_hash.data(), key_hash.size());
  }

  /// Key-equivalent material (the pad midstates) is wiped on destruction.
  ~Hmac() {
    secure_wipe(&inner_mid_, sizeof(inner_mid_));
    secure_wipe(&outer_mid_, sizeof(outer_mid_));
  }

  Hmac(const Hmac&) = default;
  Hmac& operator=(const Hmac&) = default;

  void update(ByteView data) { inner_.update(data); }

  Bytes finish() {
    Bytes digest(kDigestSize);
    finish_into(digest.data());
    return digest;
  }

  /// Allocation-free finalize: writes the tag to `out` (kDigestSize bytes).
  void finish_into(std::uint8_t* out) {
    Digest inner_digest;
    inner_.finish_into(inner_digest.data());
    Hash outer;
    outer.restore_midstate(outer_mid_);
    outer.update(ByteView(inner_digest.data(), inner_digest.size()));
    outer.finish_into(out);
    secure_wipe(inner_digest.data(), inner_digest.size());
  }

  Digest finish_digest() {
    Digest digest;
    finish_into(digest.data());
    return digest;
  }

  /// Restarts the MAC with the same key (a midstate restore; no hashing).
  void reset() { inner_.restore_midstate(inner_mid_); }

 private:
  typename Hash::Midstate inner_mid_;
  typename Hash::Midstate outer_mid_;
  Hash inner_;
};

using HmacSha256 = Hmac<Sha256>;
using HmacSha512 = Hmac<Sha512>;

/// One-shot HMAC-SHA256.
Bytes hmac_sha256(ByteView key, ByteView data);

/// One-shot HMAC-SHA512.
Bytes hmac_sha512(ByteView key, ByteView data);

}  // namespace amnesia::crypto
