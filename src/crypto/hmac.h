// HMAC (RFC 2104) over the project's SHA-2 implementations.
//
// HMAC-SHA256 is used by the secure-channel key schedule (via HKDF) and by
// PBKDF2 for master-password hashing; HMAC-SHA512 is provided for
// completeness and used by the LastPass-style baseline vault.
#pragma once

#include "common/bytes.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"

namespace amnesia::crypto {

/// Streaming HMAC over any hash type exposing kDigestSize/kBlockSize,
/// update(), finish(), reset().
template <typename Hash>
class Hmac {
 public:
  static constexpr std::size_t kDigestSize = Hash::kDigestSize;

  explicit Hmac(ByteView key) {
    Bytes k(key.begin(), key.end());
    if (k.size() > Hash::kBlockSize) {
      Hash h;
      h.update(k);
      k = h.finish();
    }
    k.resize(Hash::kBlockSize, 0);
    ipad_ = k;
    opad_ = k;
    for (auto& b : ipad_) b ^= 0x36;
    for (auto& b : opad_) b ^= 0x5c;
    inner_.update(ipad_);
  }

  void update(ByteView data) { inner_.update(data); }

  Bytes finish() {
    const Bytes inner_digest = inner_.finish();
    Hash outer;
    outer.update(opad_);
    outer.update(inner_digest);
    return outer.finish();
  }

  /// Restarts the MAC with the same key.
  void reset() {
    inner_.reset();
    inner_.update(ipad_);
  }

 private:
  Bytes ipad_;
  Bytes opad_;
  Hash inner_;
};

using HmacSha256 = Hmac<Sha256>;
using HmacSha512 = Hmac<Sha512>;

/// One-shot HMAC-SHA256.
Bytes hmac_sha256(ByteView key, ByteView data);

/// One-shot HMAC-SHA512.
Bytes hmac_sha512(ByteView key, ByteView data);

}  // namespace amnesia::crypto
