#include "crypto/pbkdf2.h"

#include "common/error.h"
#include "crypto/crypto_metrics.h"
#include "crypto/hmac.h"

namespace amnesia::crypto {

Bytes pbkdf2_hmac_sha256(ByteView password, ByteView salt,
                         std::uint32_t iterations, std::size_t dk_len) {
  if (iterations == 0) throw CryptoError("pbkdf2: zero iterations");
  constexpr std::size_t kHashLen = Sha256::kDigestSize;

  // One HMAC instance holds the precomputed key-pad midstates; every
  // iteration below is a midstate restore plus exactly two SHA-256
  // compressions (inner over U, outer over the inner digest), with all
  // intermediates on fixed-size stack buffers — no key re-scheduling and
  // no heap traffic inside the loop.
  HmacSha256 mac(password);
  std::array<std::uint8_t, kHashLen> u;
  std::array<std::uint8_t, kHashLen> t;

  Bytes dk;
  dk.reserve(dk_len);
  std::uint32_t block_index = 1;
  while (dk.size() < dk_len) {
    // U1 = PRF(P, S || INT_32_BE(i))
    mac.reset();
    mac.update(salt);
    const std::uint8_t be[4] = {
        static_cast<std::uint8_t>(block_index >> 24),
        static_cast<std::uint8_t>(block_index >> 16),
        static_cast<std::uint8_t>(block_index >> 8),
        static_cast<std::uint8_t>(block_index)};
    mac.update(ByteView(be, 4));
    mac.finish_into(u.data());
    t = u;
    for (std::uint32_t iter = 1; iter < iterations; ++iter) {
      mac.reset();
      mac.update(ByteView(u.data(), kHashLen));
      mac.finish_into(u.data());
      for (std::size_t i = 0; i < kHashLen; ++i) t[i] ^= u[i];
    }
    const std::size_t take = std::min(kHashLen, dk_len - dk.size());
    dk.insert(dk.end(), t.begin(), t.begin() + static_cast<long>(take));
    ++block_index;
  }
  secure_wipe(u.data(), u.size());
  secure_wipe(t.data(), t.size());

  const auto& counters = detail::crypto_counters();
  if (counters.pbkdf2_calls) {
    counters.pbkdf2_calls->inc();
    counters.pbkdf2_iterations->inc(
        static_cast<std::uint64_t>(iterations) * (block_index - 1));
  }
  return dk;
}

}  // namespace amnesia::crypto
