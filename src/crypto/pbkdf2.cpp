#include "crypto/pbkdf2.h"

#include "common/error.h"
#include "crypto/hmac.h"

namespace amnesia::crypto {

Bytes pbkdf2_hmac_sha256(ByteView password, ByteView salt,
                         std::uint32_t iterations, std::size_t dk_len) {
  if (iterations == 0) throw CryptoError("pbkdf2: zero iterations");
  constexpr std::size_t kHashLen = Sha256::kDigestSize;

  Bytes dk;
  dk.reserve(dk_len);
  std::uint32_t block_index = 1;
  while (dk.size() < dk_len) {
    // U1 = PRF(P, S || INT_32_BE(i))
    HmacSha256 mac(password);
    mac.update(salt);
    const std::uint8_t be[4] = {
        static_cast<std::uint8_t>(block_index >> 24),
        static_cast<std::uint8_t>(block_index >> 16),
        static_cast<std::uint8_t>(block_index >> 8),
        static_cast<std::uint8_t>(block_index)};
    mac.update(ByteView(be, 4));
    Bytes u = mac.finish();
    Bytes t = u;
    for (std::uint32_t iter = 1; iter < iterations; ++iter) {
      u = hmac_sha256(password, u);
      for (std::size_t i = 0; i < kHashLen; ++i) t[i] ^= u[i];
    }
    const std::size_t take = std::min(kHashLen, dk_len - dk.size());
    dk.insert(dk.end(), t.begin(), t.begin() + static_cast<long>(take));
    ++block_index;
  }
  return dk;
}

}  // namespace amnesia::crypto
