#include "crypto/sha256.h"

#include <bit>
#include <cstring>

#include "common/error.h"

namespace amnesia::crypto {

namespace {

constexpr std::array<std::uint32_t, 64> kK = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::array<std::uint32_t, 8> kInit = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

inline std::uint32_t rotr(std::uint32_t x, int n) { return std::rotr(x, n); }

}  // namespace

Sha256::Sha256() { reset(); }

void Sha256::reset() {
  state_ = kInit;
  buffered_ = 0;
  total_bytes_ = 0;
  finished_ = false;
}

void Sha256::process_block(const std::uint8_t* block) {
  std::array<std::uint32_t, 64> w;
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  auto [a, b, c, d, e, f, g, h] = state_;
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kK[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(ByteView data) {
  if (finished_) throw CryptoError("Sha256: update() after finish()");
  total_bytes_ += data.size();
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t need = kBlockSize - buffered_;
    const std::size_t take = std::min(need, data.size());
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset += take;
    if (buffered_ == kBlockSize) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + kBlockSize <= data.size()) {
    process_block(data.data() + offset);
    offset += kBlockSize;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Sha256::Midstate Sha256::save_midstate() const {
  if (finished_) throw CryptoError("Sha256: save_midstate() after finish()");
  if (buffered_ != 0) {
    throw CryptoError("Sha256: save_midstate() off a block boundary");
  }
  return Midstate{state_, total_bytes_};
}

void Sha256::restore_midstate(const Midstate& m) {
  state_ = m.h;
  total_bytes_ = m.total_bytes;
  buffered_ = 0;
  finished_ = false;
}

Bytes Sha256::finish() {
  Bytes digest(kDigestSize);
  finish_into(digest.data());
  return digest;
}

Sha256::Digest Sha256::finish_digest() {
  Digest digest;
  finish_into(digest.data());
  return digest;
}

void Sha256::finish_into(std::uint8_t* out) {
  if (finished_) throw CryptoError("Sha256: finish() called twice");
  finished_ = true;

  const std::uint64_t bit_len = total_bytes_ * 8;
  std::array<std::uint8_t, kBlockSize * 2> pad{};
  std::size_t pad_len = 0;
  pad[pad_len++] = 0x80;
  // Pad to 56 mod 64, then append the 64-bit big-endian bit length.
  while ((buffered_ + pad_len) % kBlockSize != 56) ++pad_len;
  for (int i = 7; i >= 0; --i) {
    pad[pad_len++] = static_cast<std::uint8_t>(bit_len >> (i * 8));
  }

  // Feed padding through the block machinery directly.
  std::size_t offset = 0;
  while (offset < pad_len) {
    const std::size_t take = std::min(kBlockSize - buffered_, pad_len - offset);
    std::memcpy(buffer_.data() + buffered_, pad.data() + offset, take);
    buffered_ += take;
    offset += take;
    if (buffered_ == kBlockSize) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }

  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
}

Bytes sha256(ByteView data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

Bytes sha256_concat(std::initializer_list<ByteView> parts) {
  Sha256 h;
  for (const auto& p : parts) h.update(p);
  return h.finish();
}

}  // namespace amnesia::crypto
