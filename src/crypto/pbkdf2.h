// PBKDF2-HMAC-SHA256 (RFC 8018).
//
// The paper stores H(MP + salt) for master-password verification. A plain
// salted hash is cheap to brute-force offline after a server breach, so the
// default MasterPasswordHasher (see password_hash.h) uses PBKDF2 with a
// configurable work factor; the paper's literal scheme remains available as
// a legacy mode for the comparison benchmarks.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace amnesia::crypto {

/// Derives `dk_len` bytes from `password` and `salt` using `iterations`
/// rounds of HMAC-SHA256. Throws CryptoError on zero iterations.
Bytes pbkdf2_hmac_sha256(ByteView password, ByteView salt,
                         std::uint32_t iterations, std::size_t dk_len);

}  // namespace amnesia::crypto
