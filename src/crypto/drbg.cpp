#include "crypto/drbg.h"

#include <cstring>
#include <random>

#include "common/error.h"
#include "crypto/chacha20.h"
#include "crypto/sha256.h"

namespace amnesia::crypto {

ChaChaDrbg::ChaChaDrbg(ByteView seed) {
  if (seed.size() != kSeedSize) throw CryptoError("drbg: seed must be 32 bytes");
  std::memcpy(key_.data(), seed.data(), kSeedSize);
  pool_used_ = pool_.size();  // force refill on first use
}

ChaChaDrbg::ChaChaDrbg(std::uint64_t seed) {
  std::uint8_t le[8];
  for (int i = 0; i < 8; ++i) le[i] = static_cast<std::uint8_t>(seed >> (i * 8));
  Sha256 h;
  h.update(ByteView(le, 8));
  h.finish_into(key_.data());
  pool_used_ = pool_.size();
}

void ChaChaDrbg::refill() {
  // Generate pool || next_key from the current key, then discard the
  // current key (fast key erasure).
  std::uint8_t nonce[12] = {0};
  for (int i = 0; i < 8; ++i) {
    nonce[i] = static_cast<std::uint8_t>(block_counter_ >> (i * 8));
  }
  ++block_counter_;
  ChaCha20 cipher(key_, ByteView(nonce, 12), 0);
  std::array<std::uint8_t, 32> next_key;
  {
    const auto block = cipher.next_block();
    std::memcpy(next_key.data(), block.data(), 32);
    // Remaining 32 bytes of the first block are discarded.
  }
  for (std::size_t off = 0; off < pool_.size(); off += 64) {
    const auto block = cipher.next_block();
    std::memcpy(pool_.data() + off, block.data(), 64);
  }
  key_ = next_key;
  pool_used_ = 0;
}

void ChaChaDrbg::fill(Bytes& out) {
  std::size_t produced = 0;
  while (produced < out.size()) {
    if (pool_used_ == pool_.size()) refill();
    const std::size_t take =
        std::min(pool_.size() - pool_used_, out.size() - produced);
    std::memcpy(out.data() + produced, pool_.data() + pool_used_, take);
    pool_used_ += take;
    produced += take;
  }
}

void ChaChaDrbg::reseed(ByteView entropy) {
  Sha256 h;
  h.update(ByteView(key_.data(), key_.size()));
  h.update(entropy);
  h.finish_into(key_.data());
  pool_used_ = pool_.size();  // invalidate buffered output
}

RandomSource& system_random() {
  static ChaChaDrbg* instance = [] {
    std::random_device rd;
    Bytes seed_material(64);
    for (std::size_t i = 0; i < seed_material.size(); i += 4) {
      const std::uint32_t v = rd();
      for (std::size_t j = 0; j < 4 && i + j < seed_material.size(); ++j) {
        seed_material[i + j] = static_cast<std::uint8_t>(v >> (j * 8));
      }
    }
    const Bytes seed = sha256(seed_material);
    return new ChaChaDrbg(seed);
  }();
  return *instance;
}

}  // namespace amnesia::crypto
