// Deterministic random bit generator and system entropy source.
//
// ChaChaDrbg is a fast-key-erasure ChaCha20 generator: every refill derives
// a fresh internal key from its own output, so compromise of the current
// state does not reveal past output. It implements RandomSource, which is
// the single randomness interface used by protocol code, key generation,
// and the network simulator (seeded deterministically in tests/benchmarks).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "common/rng.h"

namespace amnesia::crypto {

class ChaChaDrbg final : public RandomSource {
 public:
  static constexpr std::size_t kSeedSize = 32;

  /// Seeds from exactly 32 bytes. Throws CryptoError otherwise.
  explicit ChaChaDrbg(ByteView seed);

  /// Convenience: seeds from a 64-bit value expanded through SHA-256.
  /// Intended for reproducible simulations, not for cryptographic keys.
  explicit ChaChaDrbg(std::uint64_t seed);

  void fill(Bytes& out) override;

  /// Mixes additional entropy into the state.
  void reseed(ByteView entropy);

 private:
  void refill();

  std::array<std::uint8_t, 32> key_;
  std::uint64_t block_counter_ = 0;
  std::array<std::uint8_t, 64 * 8> pool_{};
  std::size_t pool_used_;
};

/// Process-wide entropy source backed by std::random_device, whitened
/// through a ChaChaDrbg. Suitable for generating long-lived secrets.
RandomSource& system_random();

}  // namespace amnesia::crypto
