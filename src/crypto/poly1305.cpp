#include "crypto/poly1305.h"

#include <cstring>

#include "common/error.h"

// 32-bit limb implementation following the widely used "poly1305-donna"
// schoolbook multiplication over 26-bit limbs, specialized to this
// codebase's style. Arithmetic is mod 2^130 - 5.

namespace amnesia::crypto {

namespace {

inline std::uint32_t load32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

Poly1305::Poly1305(ByteView key) {
  if (key.size() != kKeySize) throw CryptoError("poly1305: bad key size");
  // r is clamped per RFC 8439 section 2.5.
  r_[0] = load32_le(key.data() + 0) & 0x3ffffff;
  r_[1] = (load32_le(key.data() + 3) >> 2) & 0x3ffff03;
  r_[2] = (load32_le(key.data() + 6) >> 4) & 0x3ffc0ff;
  r_[3] = (load32_le(key.data() + 9) >> 6) & 0x3f03fff;
  r_[4] = (load32_le(key.data() + 12) >> 8) & 0x00fffff;
  std::memcpy(s_.data(), key.data() + 16, 16);
}

void Poly1305::process_block(const std::uint8_t* block, bool final_partial,
                             std::size_t len) {
  std::uint8_t padded[17] = {0};
  const std::uint8_t* m = block;
  std::uint32_t hibit = 1 << 24;  // 2^128 added to each full block
  if (final_partial) {
    std::memcpy(padded, block, len);
    padded[len] = 1;  // the "1" byte of the padded final block
    m = padded;
    hibit = 0;
  }

  std::uint32_t h0 = h_[0], h1 = h_[1], h2 = h_[2], h3 = h_[3], h4 = h_[4];
  const std::uint32_t r0 = r_[0], r1 = r_[1], r2 = r_[2], r3 = r_[3],
                      r4 = r_[4];
  const std::uint32_t s1 = r1 * 5, s2 = r2 * 5, s3 = r3 * 5, s4 = r4 * 5;

  h0 += load32_le(m + 0) & 0x3ffffff;
  h1 += (load32_le(m + 3) >> 2) & 0x3ffffff;
  h2 += (load32_le(m + 6) >> 4) & 0x3ffffff;
  h3 += (load32_le(m + 9) >> 6) & 0x3ffffff;
  h4 += (load32_le(m + 12) >> 8) | hibit;

  auto mul = [](std::uint32_t a, std::uint32_t b) {
    return static_cast<std::uint64_t>(a) * b;
  };
  std::uint64_t d0 = mul(h0, r0) + mul(h1, s4) + mul(h2, s3) + mul(h3, s2) +
                     mul(h4, s1);
  std::uint64_t d1 = mul(h0, r1) + mul(h1, r0) + mul(h2, s4) + mul(h3, s3) +
                     mul(h4, s2);
  std::uint64_t d2 = mul(h0, r2) + mul(h1, r1) + mul(h2, r0) + mul(h3, s4) +
                     mul(h4, s3);
  std::uint64_t d3 = mul(h0, r3) + mul(h1, r2) + mul(h2, r1) + mul(h3, r0) +
                     mul(h4, s4);
  std::uint64_t d4 = mul(h0, r4) + mul(h1, r3) + mul(h2, r2) + mul(h3, r1) +
                     mul(h4, r0);

  std::uint32_t c;
  c = static_cast<std::uint32_t>(d0 >> 26);
  h0 = static_cast<std::uint32_t>(d0) & 0x3ffffff;
  d1 += c;
  c = static_cast<std::uint32_t>(d1 >> 26);
  h1 = static_cast<std::uint32_t>(d1) & 0x3ffffff;
  d2 += c;
  c = static_cast<std::uint32_t>(d2 >> 26);
  h2 = static_cast<std::uint32_t>(d2) & 0x3ffffff;
  d3 += c;
  c = static_cast<std::uint32_t>(d3 >> 26);
  h3 = static_cast<std::uint32_t>(d3) & 0x3ffffff;
  d4 += c;
  c = static_cast<std::uint32_t>(d4 >> 26);
  h4 = static_cast<std::uint32_t>(d4) & 0x3ffffff;
  h0 += c * 5;
  c = h0 >> 26;
  h0 &= 0x3ffffff;
  h1 += c;

  h_[0] = h0;
  h_[1] = h1;
  h_[2] = h2;
  h_[3] = h3;
  h_[4] = h4;
}

void Poly1305::update(ByteView data) {
  if (finished_) throw CryptoError("poly1305: update() after finish()");
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(16 - buffered_, data.size());
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset += take;
    if (buffered_ == 16) {
      process_block(buffer_.data(), /*final_partial=*/false, 16);
      buffered_ = 0;
    }
  }
  while (offset + 16 <= data.size()) {
    process_block(data.data() + offset, /*final_partial=*/false, 16);
    offset += 16;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

std::array<std::uint8_t, Poly1305::kTagSize> Poly1305::finish() {
  std::array<std::uint8_t, kTagSize> tag;
  finish_into(tag.data());
  return tag;
}

void Poly1305::finish_into(std::uint8_t* out) {
  if (finished_) throw CryptoError("poly1305: finish() called twice");
  finished_ = true;
  if (buffered_ > 0) {
    process_block(buffer_.data(), /*final_partial=*/true, buffered_);
  }

  std::uint32_t h0 = h_[0], h1 = h_[1], h2 = h_[2], h3 = h_[3], h4 = h_[4];

  // Full carry propagation.
  std::uint32_t c;
  c = h1 >> 26;
  h1 &= 0x3ffffff;
  h2 += c;
  c = h2 >> 26;
  h2 &= 0x3ffffff;
  h3 += c;
  c = h3 >> 26;
  h3 &= 0x3ffffff;
  h4 += c;
  c = h4 >> 26;
  h4 &= 0x3ffffff;
  h0 += c * 5;
  c = h0 >> 26;
  h0 &= 0x3ffffff;
  h1 += c;

  // Compute h + -p and constant-time select the reduced value.
  std::uint32_t g0 = h0 + 5;
  c = g0 >> 26;
  g0 &= 0x3ffffff;
  std::uint32_t g1 = h1 + c;
  c = g1 >> 26;
  g1 &= 0x3ffffff;
  std::uint32_t g2 = h2 + c;
  c = g2 >> 26;
  g2 &= 0x3ffffff;
  std::uint32_t g3 = h3 + c;
  c = g3 >> 26;
  g3 &= 0x3ffffff;
  std::uint32_t g4 = h4 + c - (1 << 26);

  std::uint32_t mask = (g4 >> 31) - 1;  // all-ones if h >= p
  g0 &= mask;
  g1 &= mask;
  g2 &= mask;
  g3 &= mask;
  g4 &= mask;
  mask = ~mask;
  h0 = (h0 & mask) | g0;
  h1 = (h1 & mask) | g1;
  h2 = (h2 & mask) | g2;
  h3 = (h3 & mask) | g3;
  h4 = (h4 & mask) | g4;

  // h = h % 2^128, then tag = (h + s) % 2^128.
  h0 = (h0 | (h1 << 26)) & 0xffffffff;
  h1 = ((h1 >> 6) | (h2 << 20)) & 0xffffffff;
  h2 = ((h2 >> 12) | (h3 << 14)) & 0xffffffff;
  h3 = ((h3 >> 18) | (h4 << 8)) & 0xffffffff;

  std::uint64_t f;
  f = static_cast<std::uint64_t>(h0) + load32_le(s_.data() + 0);
  h0 = static_cast<std::uint32_t>(f);
  f = static_cast<std::uint64_t>(h1) + load32_le(s_.data() + 4) + (f >> 32);
  h1 = static_cast<std::uint32_t>(f);
  f = static_cast<std::uint64_t>(h2) + load32_le(s_.data() + 8) + (f >> 32);
  h2 = static_cast<std::uint32_t>(f);
  f = static_cast<std::uint64_t>(h3) + load32_le(s_.data() + 12) + (f >> 32);
  h3 = static_cast<std::uint32_t>(f);

  const std::uint32_t words[4] = {h0, h1, h2, h3};
  for (int i = 0; i < 4; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(words[i]);
    out[i * 4 + 1] = static_cast<std::uint8_t>(words[i] >> 8);
    out[i * 4 + 2] = static_cast<std::uint8_t>(words[i] >> 16);
    out[i * 4 + 3] = static_cast<std::uint8_t>(words[i] >> 24);
  }
}

std::array<std::uint8_t, Poly1305::kTagSize> poly1305(ByteView key,
                                                      ByteView data) {
  Poly1305 mac(key);
  mac.update(data);
  return mac.finish();
}

}  // namespace amnesia::crypto
