#include "crypto/aead.h"

#include <array>
#include <cstring>

#include "common/error.h"
#include "crypto/chacha20.h"
#include "crypto/poly1305.h"

namespace amnesia::crypto {

namespace {

std::array<std::uint8_t, 32> poly1305_key(ByteView key, ByteView nonce) {
  // The one-time Poly1305 key is the first 32 bytes of the ChaCha20
  // keystream at block counter 0.
  ChaCha20 cipher(key, nonce, 0);
  const auto block = cipher.next_block();
  std::array<std::uint8_t, 32> otk;
  std::memcpy(otk.data(), block.data(), otk.size());
  return otk;
}

std::array<std::uint8_t, kAeadTagSize> compute_tag(ByteView otk, ByteView aad,
                                                   ByteView ciphertext) {
  Poly1305 mac(otk);
  constexpr std::array<std::uint8_t, 16> zero_pad{};
  mac.update(aad);
  if (aad.size() % 16 != 0) {
    mac.update(ByteView(zero_pad.data(), 16 - aad.size() % 16));
  }
  mac.update(ciphertext);
  if (ciphertext.size() % 16 != 0) {
    mac.update(ByteView(zero_pad.data(), 16 - ciphertext.size() % 16));
  }
  std::uint8_t lengths[16];
  const std::uint64_t aad_len = aad.size();
  const std::uint64_t ct_len = ciphertext.size();
  for (int i = 0; i < 8; ++i) {
    lengths[i] = static_cast<std::uint8_t>(aad_len >> (i * 8));
    lengths[8 + i] = static_cast<std::uint8_t>(ct_len >> (i * 8));
  }
  mac.update(ByteView(lengths, 16));
  return mac.finish();
}

}  // namespace

void aead_seal_into(ByteView key, ByteView nonce, ByteView aad,
                    ByteView plaintext, Bytes& out) {
  out.resize(plaintext.size() + kAeadTagSize);
  if (!plaintext.empty()) {
    std::memcpy(out.data(), plaintext.data(), plaintext.size());
  }
  ChaCha20 cipher(key, nonce, 1);
  cipher.xor_stream(out.data(), plaintext.size());
  const auto otk = poly1305_key(key, nonce);
  const auto tag = compute_tag(ByteView(otk.data(), otk.size()), aad,
                               ByteView(out.data(), plaintext.size()));
  std::memcpy(out.data() + plaintext.size(), tag.data(), kAeadTagSize);
}

bool aead_open_into(ByteView key, ByteView nonce, ByteView aad,
                    ByteView sealed, Bytes& out) {
  if (sealed.size() < kAeadTagSize) return false;
  const ByteView ciphertext = sealed.first(sealed.size() - kAeadTagSize);
  const ByteView tag = sealed.last(kAeadTagSize);
  const auto otk = poly1305_key(key, nonce);
  const auto expected =
      compute_tag(ByteView(otk.data(), otk.size()), aad, ciphertext);
  if (!ct_equal(ByteView(expected.data(), expected.size()), tag)) {
    return false;
  }
  out.resize(ciphertext.size());
  if (!ciphertext.empty()) {
    std::memcpy(out.data(), ciphertext.data(), ciphertext.size());
  }
  ChaCha20 cipher(key, nonce, 1);
  cipher.xor_stream(out.data(), out.size());
  return true;
}

Bytes aead_seal(ByteView key, ByteView nonce, ByteView aad,
                ByteView plaintext) {
  Bytes out;
  aead_seal_into(key, nonce, aad, plaintext, out);
  return out;
}

std::optional<Bytes> aead_open(ByteView key, ByteView nonce, ByteView aad,
                               ByteView sealed) {
  Bytes out;
  if (!aead_open_into(key, nonce, aad, sealed, out)) return std::nullopt;
  return out;
}

}  // namespace amnesia::crypto
