#include "crypto/aead.h"

#include <cstring>

#include "common/error.h"
#include "crypto/chacha20.h"
#include "crypto/poly1305.h"

namespace amnesia::crypto {

namespace {

Bytes poly1305_key(ByteView key, ByteView nonce) {
  // The one-time Poly1305 key is the first 32 bytes of the ChaCha20
  // keystream at block counter 0.
  ChaCha20 cipher(key, nonce, 0);
  const auto block = cipher.next_block();
  return Bytes(block.begin(), block.begin() + 32);
}

std::array<std::uint8_t, kAeadTagSize> compute_tag(ByteView otk, ByteView aad,
                                                   ByteView ciphertext) {
  Poly1305 mac(otk);
  static const Bytes zero_pad(16, 0);
  mac.update(aad);
  if (aad.size() % 16 != 0) {
    mac.update(ByteView(zero_pad.data(), 16 - aad.size() % 16));
  }
  mac.update(ciphertext);
  if (ciphertext.size() % 16 != 0) {
    mac.update(ByteView(zero_pad.data(), 16 - ciphertext.size() % 16));
  }
  std::uint8_t lengths[16];
  const std::uint64_t aad_len = aad.size();
  const std::uint64_t ct_len = ciphertext.size();
  for (int i = 0; i < 8; ++i) {
    lengths[i] = static_cast<std::uint8_t>(aad_len >> (i * 8));
    lengths[8 + i] = static_cast<std::uint8_t>(ct_len >> (i * 8));
  }
  mac.update(ByteView(lengths, 16));
  return mac.finish();
}

}  // namespace

Bytes aead_seal(ByteView key, ByteView nonce, ByteView aad,
                ByteView plaintext) {
  const Bytes otk = poly1305_key(key, nonce);
  Bytes ciphertext(plaintext.begin(), plaintext.end());
  ChaCha20 cipher(key, nonce, 1);
  cipher.xor_stream(ciphertext);
  const auto tag = compute_tag(otk, aad, ciphertext);
  ciphertext.insert(ciphertext.end(), tag.begin(), tag.end());
  return ciphertext;
}

std::optional<Bytes> aead_open(ByteView key, ByteView nonce, ByteView aad,
                               ByteView sealed) {
  if (sealed.size() < kAeadTagSize) return std::nullopt;
  const ByteView ciphertext = sealed.first(sealed.size() - kAeadTagSize);
  const ByteView tag = sealed.last(kAeadTagSize);
  const Bytes otk = poly1305_key(key, nonce);
  const auto expected = compute_tag(otk, aad, ciphertext);
  if (!ct_equal(ByteView(expected.data(), expected.size()), tag)) {
    return std::nullopt;
  }
  Bytes plaintext(ciphertext.begin(), ciphertext.end());
  ChaCha20 cipher(key, nonce, 1);
  cipher.xor_stream(plaintext);
  return plaintext;
}

}  // namespace amnesia::crypto
