// ChaCha20-Poly1305 AEAD (RFC 8439 section 2.8).
//
// This is the record-protection algorithm of the secure channel
// (src/securechan), the HTTPS stand-in, and of the encrypted vaults in the
// baseline password managers.
//
// The `_into` variants write into a caller-provided buffer whose capacity
// is reused across calls, so a warmed-up secure channel seals and opens
// records without touching the heap; the value-returning forms are
// convenience wrappers.
#pragma once

#include <optional>

#include "common/bytes.h"

namespace amnesia::crypto {

constexpr std::size_t kAeadKeySize = 32;
constexpr std::size_t kAeadNonceSize = 12;
constexpr std::size_t kAeadTagSize = 16;

/// Encrypts `plaintext` with `aad` authenticated. Returns
/// ciphertext || 16-byte tag. Throws CryptoError on bad key/nonce sizes.
Bytes aead_seal(ByteView key, ByteView nonce, ByteView aad,
                ByteView plaintext);

/// Authenticates and decrypts. Returns nullopt if the tag does not verify
/// (tampered ciphertext, wrong key/nonce/aad).
std::optional<Bytes> aead_open(ByteView key, ByteView nonce, ByteView aad,
                               ByteView sealed);

/// Seals into `out` (resized to plaintext.size() + kAeadTagSize; existing
/// capacity is reused). `out` must not alias `plaintext` or `aad`.
void aead_seal_into(ByteView key, ByteView nonce, ByteView aad,
                    ByteView plaintext, Bytes& out);

/// Opens into `out` (resized to the plaintext size on success; untouched
/// plaintext bytes are never exposed on failure — the tag is checked
/// first). Returns false if authentication fails. `out` must not alias
/// `sealed` or `aad`.
bool aead_open_into(ByteView key, ByteView nonce, ByteView aad,
                    ByteView sealed, Bytes& out);

}  // namespace amnesia::crypto
