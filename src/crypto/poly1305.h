// Poly1305 one-time authenticator (RFC 8439).
//
// Used only inside the ChaCha20-Poly1305 AEAD; the 32-byte one-time key is
// derived per message from the ChaCha20 keystream.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace amnesia::crypto {

class Poly1305 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kTagSize = 16;

  /// Throws CryptoError if key is not 32 bytes.
  explicit Poly1305(ByteView key);

  void update(ByteView data);
  std::array<std::uint8_t, kTagSize> finish();

  /// Allocation-free finalize: writes the 16-byte tag to `out`.
  void finish_into(std::uint8_t* out);

 private:
  void process_block(const std::uint8_t* block, bool final_partial,
                     std::size_t len);

  // Accumulator and key in 26-bit limbs (the standard "donna" layout).
  std::array<std::uint32_t, 5> r_{};
  std::array<std::uint32_t, 5> h_{};
  std::array<std::uint8_t, 16> s_{};
  std::array<std::uint8_t, 16> buffer_{};
  std::size_t buffered_ = 0;
  bool finished_ = false;
};

/// One-shot tag computation.
std::array<std::uint8_t, Poly1305::kTagSize> poly1305(ByteView key,
                                                      ByteView data);

}  // namespace amnesia::crypto
