// X25519 Diffie-Hellman (RFC 7748), 64-bit limb implementation.
//
// The secure channel (the HTTPS substitute in src/securechan) authenticates
// the Amnesia server with a pinned static X25519 key — mirroring the
// paper's self-signed, pre-distributed certificate — and derives session
// keys from an ephemeral-static exchange.
#pragma once

#include <array>

#include "common/bytes.h"
#include "common/rng.h"

namespace amnesia::crypto {

constexpr std::size_t kX25519KeySize = 32;

using X25519Key = std::array<std::uint8_t, kX25519KeySize>;

/// Scalar multiplication: out = scalar * point. The scalar is clamped per
/// RFC 7748. Throws CryptoError on wrong input sizes.
X25519Key x25519(ByteView scalar, ByteView point);

/// Scalar multiplication with the standard base point (u = 9).
X25519Key x25519_base(ByteView scalar);

struct X25519KeyPair {
  X25519Key private_key;
  X25519Key public_key;
};

/// Generates a fresh key pair from `rng`.
X25519KeyPair x25519_generate(RandomSource& rng);

}  // namespace amnesia::crypto
