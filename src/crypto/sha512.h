// SHA-512 (FIPS 180-4), implemented from scratch.
//
// Amnesia's final password derivation hashes the token, online ID, and
// account seed with SHA-512: p = SHA512(T || Oid || sigma) (paper
// section III-B4). The 128 hex digits of p feed the template function.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace amnesia::crypto {

class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  static constexpr std::size_t kBlockSize = 128;

  using Digest = std::array<std::uint8_t, kDigestSize>;

  /// Saved compression state at a block boundary; see Sha256::Midstate.
  struct Midstate {
    std::array<std::uint64_t, 8> h;
    std::uint64_t total_bytes = 0;
  };

  Sha512();

  void update(ByteView data);
  Bytes finish();
  /// Allocation-free finalize: writes the 64-byte digest to `out`.
  void finish_into(std::uint8_t* out);
  Digest finish_digest();
  void reset();

  /// See Sha256::save_midstate / restore_midstate.
  Midstate save_midstate() const;
  void restore_midstate(const Midstate& m);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint64_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffered_ = 0;
  // Message length in bytes; SHA-512 allows 128-bit lengths but 64 bits of
  // bytes (2^64 B) is far beyond anything this system hashes.
  std::uint64_t total_bytes_ = 0;
  bool finished_ = false;
};

/// One-shot SHA-512.
Bytes sha512(ByteView data);

/// One-shot SHA-512 over the concatenation of `parts`.
Bytes sha512_concat(std::initializer_list<ByteView> parts);

}  // namespace amnesia::crypto
