#include "crypto/crypto_metrics.h"

namespace amnesia::crypto {

namespace {

detail::CryptoCounters g_counters;

}  // namespace

void set_crypto_metrics(obs::MetricsRegistry* registry) {
  if (!registry) {
    g_counters = {};
    return;
  }
  g_counters.registry = registry;
  g_counters.pbkdf2_calls = &registry->counter("crypto.pbkdf2_calls");
  g_counters.pbkdf2_iterations = &registry->counter("crypto.pbkdf2_iterations");
}

void detach_crypto_metrics(obs::MetricsRegistry* registry) {
  if (g_counters.registry == registry) g_counters = {};
}

const detail::CryptoCounters& detail::crypto_counters() { return g_counters; }

}  // namespace amnesia::crypto
