// ChaCha20 stream cipher (RFC 8439).
//
// Two consumers: the ChaCha20-Poly1305 AEAD protecting the secure channel
// (the HTTPS substitute) and the deterministic random generator (drbg.h)
// that drives both cryptographic key generation and the network simulator.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace amnesia::crypto {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kBlockSize = 64;

  /// Initializes with a 256-bit key, 96-bit nonce, and initial block
  /// counter (RFC 8439 uses counter=1 for encryption, 0 for the Poly1305
  /// one-time key). Throws CryptoError on wrong key/nonce sizes.
  ChaCha20(ByteView key, ByteView nonce, std::uint32_t counter);

  /// XORs the keystream into `data` in place (encrypt == decrypt).
  void xor_stream(Bytes& data);

  /// Produces one 64-byte keystream block for the current counter and
  /// advances the counter.
  std::array<std::uint8_t, kBlockSize> next_block();

 private:
  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, kBlockSize> partial_{};
  std::size_t partial_used_ = kBlockSize;  // nothing buffered initially
};

/// One-shot encryption/decryption of `data`.
Bytes chacha20_xor(ByteView key, ByteView nonce, std::uint32_t counter,
                   ByteView data);

}  // namespace amnesia::crypto
