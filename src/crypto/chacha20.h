// ChaCha20 stream cipher (RFC 8439).
//
// Two consumers: the ChaCha20-Poly1305 AEAD protecting the secure channel
// (the HTTPS substitute) and the deterministic random generator (drbg.h)
// that drives both cryptographic key generation and the network simulator.
//
// The keystream path is block-wise: whole 64-byte blocks are XORed into
// the data a 32-bit word at a time straight from the working state, with
// byte-at-a-time handling only at buffer edges. The 32-bit block counter
// is overflow-checked: producing keystream past counter 2^32 - 1 (the
// RFC 8439 per-nonce message-length limit of ~256 GiB) throws CryptoError
// instead of silently reusing keystream.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace amnesia::crypto {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;
  static constexpr std::size_t kBlockSize = 64;

  /// Initializes with a 256-bit key, 96-bit nonce, and initial block
  /// counter (RFC 8439 uses counter=1 for encryption, 0 for the Poly1305
  /// one-time key). Throws CryptoError on wrong key/nonce sizes.
  ChaCha20(ByteView key, ByteView nonce, std::uint32_t counter);

  /// XORs the keystream into `data` in place (encrypt == decrypt).
  void xor_stream(Bytes& data);

  /// Same, over raw memory. Whole 64-byte blocks bypass the partial-block
  /// buffer entirely.
  void xor_stream(std::uint8_t* data, std::size_t len);

  /// Produces one 64-byte keystream block for the current counter and
  /// advances the counter.
  std::array<std::uint8_t, kBlockSize> next_block();

 private:
  /// Runs the 20 rounds + feed-forward into `x` for the current counter,
  /// then advances the counter. Throws CryptoError once the 32-bit
  /// counter would wrap (RFC 8439 message-length limit).
  void block_words(std::array<std::uint32_t, 16>& x);

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, kBlockSize> partial_{};
  std::size_t partial_used_ = kBlockSize;  // nothing buffered initially
  bool counter_wrapped_ = false;
};

/// One-shot encryption/decryption of `data`.
Bytes chacha20_xor(ByteView key, ByteView nonce, std::uint32_t counter,
                   ByteView data);

}  // namespace amnesia::crypto
