#include "crypto/hkdf.h"

#include "common/error.h"
#include "crypto/hmac.h"

namespace amnesia::crypto {

Bytes hkdf_extract(ByteView salt, ByteView ikm) {
  // RFC 5869: if no salt is given, a string of HashLen zeros is used.
  if (salt.empty()) {
    const Bytes zeros(Sha256::kDigestSize, 0);
    return hmac_sha256(zeros, ikm);
  }
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length) {
  constexpr std::size_t kHashLen = Sha256::kDigestSize;
  if (length > 255 * kHashLen) {
    throw CryptoError("hkdf_expand: requested length too large");
  }
  Bytes okm;
  okm.reserve(length);
  Bytes t;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    HmacSha256 mac(prk);
    mac.update(t);
    mac.update(info);
    mac.update(ByteView(&counter, 1));
    t = mac.finish();
    const std::size_t take = std::min(kHashLen, length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + static_cast<long>(take));
    ++counter;
  }
  return okm;
}

Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t length) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, length);
}

}  // namespace amnesia::crypto
