#include "crypto/hkdf.h"

#include "common/error.h"
#include "crypto/hmac.h"

namespace amnesia::crypto {

Bytes hkdf_extract(ByteView salt, ByteView ikm) {
  // RFC 5869: if no salt is given, a string of HashLen zeros is used.
  if (salt.empty()) {
    const std::array<std::uint8_t, Sha256::kDigestSize> zeros{};
    return hmac_sha256(ByteView(zeros.data(), zeros.size()), ikm);
  }
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length) {
  constexpr std::size_t kHashLen = Sha256::kDigestSize;
  if (length > 255 * kHashLen) {
    throw CryptoError("hkdf_expand: requested length too large");
  }
  Bytes okm;
  okm.reserve(length);
  // One key schedule for all blocks; T(n) stays on the stack.
  HmacSha256 mac(prk);
  std::array<std::uint8_t, kHashLen> t;
  std::size_t t_len = 0;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    mac.reset();
    mac.update(ByteView(t.data(), t_len));
    mac.update(info);
    mac.update(ByteView(&counter, 1));
    mac.finish_into(t.data());
    t_len = kHashLen;
    const std::size_t take = std::min(kHashLen, length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + static_cast<long>(take));
    ++counter;
  }
  secure_wipe(t.data(), t.size());
  return okm;
}

Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t length) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, length);
}

}  // namespace amnesia::crypto
