// Master-password verification records.
//
// Table I of the paper stores H(MP + salt). This module provides two
// interchangeable schemes behind one record format:
//   - kPbkdf2Sha256 (default): PBKDF2 with a configurable work factor, the
//     recommended storage form;
//   - kLegacySaltedSha256: the paper's literal single SHA-256 over
//     MP || salt, kept for the fidelity/ablation benchmarks that quantify
//     how much slower offline guessing becomes under PBKDF2.
// The same record format is reused for the hashed-and-salted phone ID
// H(Pid + salt), also from Table I.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/rng.h"

namespace amnesia::crypto {

enum class HashScheme : std::uint8_t {
  kLegacySaltedSha256 = 1,
  kPbkdf2Sha256 = 2,
};

struct PasswordRecord {
  HashScheme scheme;
  std::uint32_t iterations;  // meaningful for PBKDF2 only (>= 1)
  Bytes salt;
  Bytes hash;

  /// Stable textual form "scheme$iterations$salt_hex$hash_hex" for storage.
  std::string encode() const;
  static PasswordRecord decode(const std::string& encoded);
};

struct PasswordHasherOptions {
  HashScheme scheme = HashScheme::kPbkdf2Sha256;
  std::uint32_t iterations = 10'000;
  std::size_t salt_size = 16;
  std::size_t hash_size = 32;
};

class PasswordHasher {
 public:
  explicit PasswordHasher(PasswordHasherOptions options = {});

  /// Creates a verification record for `secret` with a fresh salt.
  PasswordRecord hash(ByteView secret, RandomSource& rng) const;

  /// Constant-time verification against a stored record (any scheme).
  static bool verify(ByteView secret, const PasswordRecord& record);

 private:
  PasswordHasherOptions options_;
};

}  // namespace amnesia::crypto
