#include "crypto/hmac.h"

namespace amnesia::crypto {

Bytes hmac_sha256(ByteView key, ByteView data) {
  HmacSha256 mac(key);
  mac.update(data);
  return mac.finish();
}

Bytes hmac_sha512(ByteView key, ByteView data) {
  HmacSha512 mac(key);
  mac.update(data);
  return mac.finish();
}

}  // namespace amnesia::crypto
