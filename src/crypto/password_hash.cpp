#include "crypto/password_hash.h"

#include <charconv>

#include "common/error.h"
#include "crypto/pbkdf2.h"
#include "crypto/sha256.h"

namespace amnesia::crypto {

namespace {

Bytes compute(HashScheme scheme, std::uint32_t iterations, ByteView secret,
              ByteView salt, std::size_t hash_size) {
  switch (scheme) {
    case HashScheme::kLegacySaltedSha256: {
      // The paper's H(MP + salt): a single unsalted-iteration hash.
      Bytes digest = sha256_concat({secret, salt});
      digest.resize(std::min(digest.size(), hash_size));
      return digest;
    }
    case HashScheme::kPbkdf2Sha256:
      return pbkdf2_hmac_sha256(secret, salt, iterations, hash_size);
  }
  throw CryptoError("password_hash: unknown scheme");
}

}  // namespace

std::string PasswordRecord::encode() const {
  return std::to_string(static_cast<int>(scheme)) + "$" +
         std::to_string(iterations) + "$" + hex_encode(salt) + "$" +
         hex_encode(hash);
}

PasswordRecord PasswordRecord::decode(const std::string& encoded) {
  std::array<std::string, 4> parts;
  std::size_t start = 0;
  for (int i = 0; i < 4; ++i) {
    const std::size_t pos = encoded.find('$', start);
    if (i < 3) {
      if (pos == std::string::npos) {
        throw FormatError("PasswordRecord: expected 4 '$'-separated fields");
      }
      parts[i] = encoded.substr(start, pos - start);
      start = pos + 1;
    } else {
      parts[i] = encoded.substr(start);
    }
  }
  PasswordRecord rec;
  int scheme_num = 0;
  auto [p1, ec1] = std::from_chars(parts[0].data(),
                                   parts[0].data() + parts[0].size(), scheme_num);
  std::uint32_t iters = 0;
  auto [p2, ec2] = std::from_chars(parts[1].data(),
                                   parts[1].data() + parts[1].size(), iters);
  if (ec1 != std::errc{} || ec2 != std::errc{}) {
    throw FormatError("PasswordRecord: bad numeric field");
  }
  if (scheme_num != static_cast<int>(HashScheme::kLegacySaltedSha256) &&
      scheme_num != static_cast<int>(HashScheme::kPbkdf2Sha256)) {
    throw FormatError("PasswordRecord: unknown scheme id");
  }
  rec.scheme = static_cast<HashScheme>(scheme_num);
  rec.iterations = iters;
  rec.salt = hex_decode(parts[2]);
  rec.hash = hex_decode(parts[3]);
  return rec;
}

PasswordHasher::PasswordHasher(PasswordHasherOptions options)
    : options_(options) {
  if (options_.iterations == 0) {
    throw CryptoError("PasswordHasher: iterations must be >= 1");
  }
}

PasswordRecord PasswordHasher::hash(ByteView secret, RandomSource& rng) const {
  PasswordRecord rec;
  rec.scheme = options_.scheme;
  rec.iterations = options_.iterations;
  rec.salt = rng.bytes(options_.salt_size);
  rec.hash = compute(rec.scheme, rec.iterations, secret, rec.salt,
                     options_.hash_size);
  return rec;
}

bool PasswordHasher::verify(ByteView secret, const PasswordRecord& record) {
  const Bytes candidate = compute(record.scheme, record.iterations, secret,
                                  record.salt, record.hash.size());
  return ct_equal(candidate, record.hash);
}

}  // namespace amnesia::crypto
