// HKDF (RFC 5869) with HMAC-SHA256.
//
// Used by the secure-channel handshake to derive directional record keys
// from the X25519 shared secret.
#pragma once

#include "common/bytes.h"

namespace amnesia::crypto {

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Bytes hkdf_extract(ByteView salt, ByteView ikm);

/// HKDF-Expand: derives `length` bytes of output keying material.
/// Throws CryptoError if length > 255 * 32.
Bytes hkdf_expand(ByteView prk, ByteView info, std::size_t length);

/// Extract-then-expand in one call.
Bytes hkdf(ByteView salt, ByteView ikm, ByteView info, std::size_t length);

}  // namespace amnesia::crypto
