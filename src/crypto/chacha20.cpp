#include "crypto/chacha20.h"

#include <bit>
#include <cstring>

#include "common/error.h"

namespace amnesia::crypto {

namespace {

inline std::uint32_t load32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Keystream words are defined little-endian; on a little-endian host the
/// in-memory representation already matches, so the word-wise XOR below
/// needs a swap only on big-endian targets.
inline std::uint32_t to_le(std::uint32_t v) {
  if constexpr (std::endian::native == std::endian::big) {
    return ((v & 0x000000ffu) << 24) | ((v & 0x0000ff00u) << 8) |
           ((v & 0x00ff0000u) >> 8) | ((v & 0xff000000u) >> 24);
  } else {
    return v;
  }
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b;
  d = std::rotl(d ^ a, 16);
  c += d;
  b = std::rotl(b ^ c, 12);
  a += b;
  d = std::rotl(d ^ a, 8);
  c += d;
  b = std::rotl(b ^ c, 7);
}

}  // namespace

ChaCha20::ChaCha20(ByteView key, ByteView nonce, std::uint32_t counter) {
  if (key.size() != kKeySize) throw CryptoError("chacha20: bad key size");
  if (nonce.size() != kNonceSize) throw CryptoError("chacha20: bad nonce size");
  // "expand 32-byte k"
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load32_le(key.data() + i * 4);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = load32_le(nonce.data() + i * 4);
}

void ChaCha20::block_words(std::array<std::uint32_t, 16>& x) {
  if (counter_wrapped_) {
    throw CryptoError(
        "chacha20: 32-bit block counter wrapped (RFC 8439 per-nonce "
        "message-length limit exceeded)");
  }
  x = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) x[i] += state_[i];
  if (++state_[12] == 0) counter_wrapped_ = true;
}

std::array<std::uint8_t, ChaCha20::kBlockSize> ChaCha20::next_block() {
  std::array<std::uint32_t, 16> x;
  block_words(x);
  std::array<std::uint8_t, kBlockSize> out;
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = to_le(x[i]);
    std::memcpy(out.data() + i * 4, &v, 4);
  }
  return out;
}

void ChaCha20::xor_stream(std::uint8_t* data, std::size_t len) {
  std::size_t offset = 0;
  // Drain any buffered partial-block keystream first.
  while (offset < len && partial_used_ < kBlockSize) {
    data[offset++] ^= partial_[partial_used_++];
  }
  // Whole blocks: XOR word-at-a-time straight from the working state,
  // never touching the partial buffer.
  std::array<std::uint32_t, 16> x;
  while (len - offset >= kBlockSize) {
    block_words(x);
    std::uint8_t* p = data + offset;
    for (int i = 0; i < 16; ++i) {
      std::uint32_t w;
      std::memcpy(&w, p + i * 4, 4);
      w ^= to_le(x[i]);
      std::memcpy(p + i * 4, &w, 4);
    }
    offset += kBlockSize;
  }
  // Trailing partial block: buffer one keystream block and consume from it.
  if (offset < len) {
    partial_ = next_block();
    partial_used_ = 0;
    while (offset < len) data[offset++] ^= partial_[partial_used_++];
  }
}

void ChaCha20::xor_stream(Bytes& data) { xor_stream(data.data(), data.size()); }

Bytes chacha20_xor(ByteView key, ByteView nonce, std::uint32_t counter,
                   ByteView data) {
  Bytes out(data.begin(), data.end());
  ChaCha20 cipher(key, nonce, counter);
  cipher.xor_stream(out);
  return out;
}

}  // namespace amnesia::crypto
