#include "crypto/chacha20.h"

#include <bit>

#include "common/error.h"

namespace amnesia::crypto {

namespace {

inline std::uint32_t load32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b;
  d = std::rotl(d ^ a, 16);
  c += d;
  b = std::rotl(b ^ c, 12);
  a += b;
  d = std::rotl(d ^ a, 8);
  c += d;
  b = std::rotl(b ^ c, 7);
}

}  // namespace

ChaCha20::ChaCha20(ByteView key, ByteView nonce, std::uint32_t counter) {
  if (key.size() != kKeySize) throw CryptoError("chacha20: bad key size");
  if (nonce.size() != kNonceSize) throw CryptoError("chacha20: bad nonce size");
  // "expand 32-byte k"
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load32_le(key.data() + i * 4);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = load32_le(nonce.data() + i * 4);
}

std::array<std::uint8_t, ChaCha20::kBlockSize> ChaCha20::next_block() {
  std::array<std::uint32_t, 16> x = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  std::array<std::uint8_t, kBlockSize> out;
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = x[i] + state_[i];
    out[i * 4] = static_cast<std::uint8_t>(v);
    out[i * 4 + 1] = static_cast<std::uint8_t>(v >> 8);
    out[i * 4 + 2] = static_cast<std::uint8_t>(v >> 16);
    out[i * 4 + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  ++state_[12];
  return out;
}

void ChaCha20::xor_stream(Bytes& data) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (partial_used_ == kBlockSize) {
      partial_ = next_block();
      partial_used_ = 0;
    }
    data[i] ^= partial_[partial_used_++];
  }
}

Bytes chacha20_xor(ByteView key, ByteView nonce, std::uint32_t counter,
                   ByteView data) {
  Bytes out(data.begin(), data.end());
  ChaCha20 cipher(key, nonce, counter);
  cipher.xor_stream(out);
  return out;
}

}  // namespace amnesia::crypto
