#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

namespace amnesia::obs {

// --------------------------------------------------------- header codec

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

void hex_u64(std::string& out, std::uint64_t v) {
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(kHexDigits[(v >> shift) & 0xF]);
  }
}

/// Parses exactly `n` lowercase hex chars into `out`; false on anything
/// else (uppercase included — the format is canonical, not lenient).
bool parse_hex(std::string_view s, std::size_t pos, std::size_t n,
               std::uint64_t& out) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const char c = s[pos + i];
    std::uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    v = (v << 4) | digit;
  }
  out = v;
  return true;
}

/// SplitMix64 finalizer — turns a trace id into a uniform hash for the
/// deterministic sampler.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::string format_trace_header(const TraceContext& ctx) {
  std::string out;
  out.reserve(kTraceHeaderLen);
  hex_u64(out, ctx.trace_id.hi);
  hex_u64(out, ctx.trace_id.lo);
  out.push_back('-');
  hex_u64(out, ctx.span_id);
  out.push_back('-');
  out.push_back('0');
  out.push_back(ctx.sampled ? '1' : '0');
  return out;
}

std::optional<TraceContext> parse_trace_header(std::string_view s) {
  if (s.size() != kTraceHeaderLen) return std::nullopt;
  if (s[32] != '-' || s[49] != '-') return std::nullopt;
  TraceContext ctx;
  std::uint64_t flags = 0;
  if (!parse_hex(s, 0, 16, ctx.trace_id.hi) ||
      !parse_hex(s, 16, 16, ctx.trace_id.lo) ||
      !parse_hex(s, 33, 16, ctx.span_id) || !parse_hex(s, 50, 2, flags)) {
    return std::nullopt;
  }
  if (!ctx.trace_id.valid() || ctx.span_id == 0) return std::nullopt;
  if (flags > 1) return std::nullopt;
  ctx.sampled = flags == 1;
  return ctx;
}

std::string trace_id_hex(TraceId id) {
  std::string out;
  out.reserve(32);
  hex_u64(out, id.hi);
  hex_u64(out, id.lo);
  return out;
}

std::optional<TraceId> parse_trace_id_hex(std::string_view s) {
  if (s.size() != 32) return std::nullopt;
  TraceId id;
  if (!parse_hex(s, 0, 16, id.hi) || !parse_hex(s, 16, 16, id.lo)) {
    return std::nullopt;
  }
  if (!id.valid()) return std::nullopt;
  return id;
}

// ----------------------------------------------------------------tracer

void Tracer::set_sample_probability(double p) {
  p = std::clamp(p, 0.0, 1.0);
  sample_threshold_.store(
      static_cast<std::uint64_t>(p * static_cast<double>(1ull << 53)),
      std::memory_order_relaxed);
}

double Tracer::sample_probability() const {
  return static_cast<double>(
             sample_threshold_.load(std::memory_order_relaxed)) /
         static_cast<double>(1ull << 53);
}

bool Tracer::sample_trace(TraceId id) const {
  // Hash the id rather than drawing randomness: the decision is a pure
  // function of the trace, so reruns of a seeded sim sample identically.
  return (mix64(id.hi ^ id.lo) >> 11) <
         sample_threshold_.load(std::memory_order_relaxed);
}

TraceContext Tracer::start_trace(std::string name, std::string component) {
  TraceId trace_id;
  // hi is a fixed tag ("amnesia1" in ASCII), lo the allocation counter —
  // unique per tracer, deterministic across runs.
  trace_id.hi = 0x616d6e6573696131ull;
  trace_id.lo = next_id();
  return open_span(std::move(name), std::move(component), trace_id,
                   /*parent=*/0, sample_trace(trace_id));
}

TraceContext Tracer::start_legacy_span(std::string name,
                                       std::string component, SpanId parent) {
  TraceId trace_id;
  if (parent != 0) {
    std::lock_guard<std::mutex> lock(open_mu_);
    auto it = open_.find(parent);
    if (it != open_.end()) trace_id = it->second.trace_id;
  }
  if (!trace_id.valid()) {
    trace_id.hi = 0x616d6e6573696131ull;
    trace_id.lo = next_id();
  }
  return open_span(std::move(name), std::move(component), trace_id, parent,
                   /*sampled=*/true);
}

TraceContext Tracer::start_span(std::string name, std::string component,
                                const TraceContext& parent) {
  if (!parent.valid()) {
    return start_trace(std::move(name), std::move(component));
  }
  return open_span(std::move(name), std::move(component), parent.trace_id,
                   parent.span_id, parent.sampled);
}

TraceContext Tracer::open_span(std::string name, std::string component,
                               TraceId trace_id, SpanId parent,
                               bool sampled) {
  TraceContext ctx;
  ctx.trace_id = trace_id;
  ctx.span_id = next_id();
  ctx.sampled = sampled;
  if (!sampled) return ctx;  // ids propagate, nothing is recorded

  TraceSpan span;
  span.trace_id = trace_id;
  span.id = ctx.span_id;
  span.parent = parent;
  span.name = std::move(name);
  span.component = std::move(component);
  span.start = now();
  if (on_start_) on_start_(span);

  std::lock_guard<std::mutex> lock(open_mu_);
  // Bound the open table: a span leaked by a lost callback is evicted —
  // unfinished — to the completed store once enough newer spans exist.
  while (open_.size() >= kMaxOpenSpans && !open_order_.empty()) {
    const SpanId victim = open_order_.front();
    open_order_.pop_front();
    auto it = open_.find(victim);
    if (it == open_.end()) continue;  // ended normally; stale order entry
    TraceSpan evicted = std::move(it->second);
    open_.erase(it);
    ++open_evicted_;
    complete(std::move(evicted));
  }
  open_order_.push_back(ctx.span_id);
  open_.emplace(ctx.span_id, std::move(span));
  return ctx;
}

void Tracer::add_attribute(const TraceContext& ctx, std::string key,
                           std::string value) {
  if (!ctx.sampled || ctx.span_id == 0) return;
  std::lock_guard<std::mutex> lock(open_mu_);
  auto it = open_.find(ctx.span_id);
  if (it == open_.end()) return;
  it->second.attributes.push_back({std::move(key), std::move(value)});
}

void Tracer::add_event(const TraceContext& ctx, std::string message) {
  if (!ctx.sampled || ctx.span_id == 0) return;
  const Micros at = now();
  std::lock_guard<std::mutex> lock(open_mu_);
  auto it = open_.find(ctx.span_id);
  if (it == open_.end()) return;
  it->second.events.push_back({at, std::move(message)});
}

void Tracer::end_span_id(SpanId id) {
  if (id == 0) return;
  const Micros at = now();
  TraceSpan span;
  {
    std::lock_guard<std::mutex> lock(open_mu_);
    auto it = open_.find(id);
    if (it == open_.end()) return;  // unknown or already ended: no-op
    span = std::move(it->second);
    open_.erase(it);
    // The id stays in open_order_; eviction skips entries not in the map.
  }
  span.end = at;
  span.finished = true;
  complete(std::move(span));
}

Tracer::Shard& Tracer::my_shard() {
  // One shard per thread (hashed): completions from different threads
  // almost never contend, and the single sim thread always hits shard k.
  thread_local const std::size_t index =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards;
  return shards_[index];
}

void Tracer::complete(TraceSpan span, bool notify) {
  if (notify && on_complete_) on_complete_(span);
  Shard& shard = my_shard();
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.ring.size() < kShardCapacity) {
    shard.ring.push_back(std::move(span));
    return;
  }
  shard.ring[shard.next] = std::move(span);
  shard.next = (shard.next + 1) % kShardCapacity;
  ++shard.dropped;
}

std::vector<TraceSpan> Tracer::snapshot() const {
  std::vector<TraceSpan> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.insert(out.end(), shard.ring.begin(), shard.ring.end());
  }
  {
    std::lock_guard<std::mutex> lock(open_mu_);
    for (const auto& [id, span] : open_) out.push_back(span);
  }
  // (start, id) reconstructs creation order under one clock regardless of
  // which shard a span landed in.
  std::sort(out.begin(), out.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              return a.start != b.start ? a.start < b.start : a.id < b.id;
            });
  return out;
}

std::vector<TraceSpan> Tracer::trace(TraceId id) const {
  std::vector<TraceSpan> all = snapshot();
  std::vector<TraceSpan> out;
  for (auto& span : all) {
    if (span.trace_id == id) out.push_back(std::move(span));
  }
  return out;
}

void Tracer::clear() {
  {
    std::lock_guard<std::mutex> lock(open_mu_);
    open_.clear();
    open_order_.clear();
    open_evicted_ = 0;
  }
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.ring.clear();
    shard.next = 0;
    shard.dropped = 0;
  }
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.dropped;
  }
  std::lock_guard<std::mutex> lock(open_mu_);
  return total + open_evicted_;
}

// ------------------------------------------------------- ambient context

namespace {
thread_local TraceContext g_current_trace;
}  // namespace

TraceContext current_trace() { return g_current_trace; }

ScopedTrace::ScopedTrace(const TraceContext& ctx) : prev_(g_current_trace) {
  g_current_trace = ctx;
}

ScopedTrace::~ScopedTrace() { g_current_trace = prev_; }

// ------------------------------------------------------------- event log

const char* event_level_name(EventLevel level) {
  switch (level) {
    case EventLevel::kDebug: return "debug";
    case EventLevel::kInfo: return "info";
    case EventLevel::kWarn: return "warn";
    case EventLevel::kError: return "error";
  }
  return "?";
}

void EventLog::emit(EventLevel level, std::string component,
                    std::string message) {
  EventRecord rec;
  rec.at = clock_ ? clock_->now_us() : 0;
  rec.level = level;
  rec.component = std::move(component);
  rec.message = std::move(message);
  rec.trace_id = current_trace().trace_id;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(rec));
}

std::vector<EventRecord> EventLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

namespace {

void json_escaped(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::optional<EventLevel> parse_event_level(std::string_view name) {
  if (name == "debug") return EventLevel::kDebug;
  if (name == "info") return EventLevel::kInfo;
  if (name == "warn") return EventLevel::kWarn;
  if (name == "error") return EventLevel::kError;
  return std::nullopt;
}

std::string EventLog::to_json_lines(EventLevel min_level,
                                    Micros since) const {
  const std::vector<EventRecord> records = snapshot();
  std::ostringstream out;
  for (const EventRecord& rec : records) {
    if (rec.level < min_level) continue;
    if (since > 0 && rec.at <= since) continue;
    out << "{\"at\": " << rec.at << ", \"level\": \""
        << event_level_name(rec.level) << "\", \"component\": ";
    json_escaped(out, rec.component);
    out << ", \"message\": ";
    json_escaped(out, rec.message);
    out << ", \"trace_id\": \""
        << (rec.trace_id.valid() ? trace_id_hex(rec.trace_id) : "")
        << "\"}\n";
  }
  return out.str();
}

void EventLog::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  dropped_ = 0;
}

std::uint64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

// -------------------------------------------------- trace-tree analysis

std::string trace_to_json(const std::vector<TraceSpan>& spans) {
  std::ostringstream out;
  out << "{\"spans\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& s = spans[i];
    out << (i ? ",\n  " : "\n  ");
    out << "{\"trace_id\": \"" << trace_id_hex(s.trace_id) << "\", \"id\": "
        << s.id << ", \"parent\": " << s.parent << ", \"name\": ";
    json_escaped(out, s.name);
    out << ", \"component\": ";
    json_escaped(out, s.component);
    out << ", \"start\": " << s.start << ", \"end\": " << s.end
        << ", \"finished\": " << (s.finished ? "true" : "false");
    if (!s.attributes.empty()) {
      out << ", \"attributes\": {";
      for (std::size_t a = 0; a < s.attributes.size(); ++a) {
        if (a) out << ", ";
        json_escaped(out, s.attributes[a].key);
        out << ": ";
        json_escaped(out, s.attributes[a].value);
      }
      out << '}';
    }
    if (!s.events.empty()) {
      out << ", \"events\": [";
      for (std::size_t e = 0; e < s.events.size(); ++e) {
        if (e) out << ", ";
        out << "{\"at\": " << s.events[e].at << ", \"message\": ";
        json_escaped(out, s.events[e].message);
        out << '}';
      }
      out << ']';
    }
    out << '}';
  }
  out << "\n]}\n";
  return out.str();
}

std::vector<CriticalPathEntry> critical_path(
    const std::vector<TraceSpan>& spans) {
  // Children intervals per parent, for the self-time subtraction.
  std::map<SpanId, std::vector<std::pair<Micros, Micros>>> child_intervals;
  for (const TraceSpan& s : spans) {
    if (s.finished && s.parent != 0) {
      child_intervals[s.parent].emplace_back(s.start, s.end);
    }
  }

  std::map<std::string, CriticalPathEntry> by_name;
  for (const TraceSpan& s : spans) {
    if (!s.finished) continue;
    const Micros duration = s.end > s.start ? s.end - s.start : 0;

    // Union of children intervals clipped to [start, end]: the time this
    // span spent waiting on instrumented sub-work.
    Micros covered = 0;
    auto it = child_intervals.find(s.id);
    if (it != child_intervals.end()) {
      auto& iv = it->second;
      std::sort(iv.begin(), iv.end());
      Micros cur_lo = 0, cur_hi = 0;
      bool open = false;
      for (auto [lo, hi] : iv) {
        lo = std::max(lo, s.start);
        hi = std::min(hi, s.end);
        if (lo >= hi) continue;
        if (!open) {
          cur_lo = lo;
          cur_hi = hi;
          open = true;
        } else if (lo <= cur_hi) {
          cur_hi = std::max(cur_hi, hi);
        } else {
          covered += cur_hi - cur_lo;
          cur_lo = lo;
          cur_hi = hi;
        }
      }
      if (open) covered += cur_hi - cur_lo;
    }

    CriticalPathEntry& entry = by_name[s.name];
    if (entry.count == 0) {
      entry.name = s.name;
      entry.component = s.component;
    }
    ++entry.count;
    entry.total_us += duration;
    entry.self_us += duration > covered ? duration - covered : 0;
  }

  std::vector<CriticalPathEntry> out;
  out.reserve(by_name.size());
  for (auto& [name, entry] : by_name) out.push_back(std::move(entry));
  std::sort(out.begin(), out.end(),
            [](const CriticalPathEntry& a, const CriticalPathEntry& b) {
              return a.self_us != b.self_us ? a.self_us > b.self_us
                                           : a.name < b.name;
            });
  return out;
}

}  // namespace amnesia::obs
