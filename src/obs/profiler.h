// Always-on sampling CPU profiler (Google-Wide-Profiling style).
//
// The tracing layer answers "where did this request's time go"; this
// module answers "where does the *CPU* go" — the other half of the
// attribution story the capacity harness (ROADMAP item 2) reports
// through. Design:
//
//   * one POSIX per-thread CPU-time timer per registered thread
//     (timer_create on the thread's CPU clock, SIGEV_THREAD_ID), so a
//     thread is only sampled while it is actually running — an idle
//     reactor parked in epoll_wait costs nothing;
//   * the SIGPROF handler captures a raw `backtrace()` into a lock-free
//     per-thread sample ring (all-atomic slots, drop-oldest). The
//     handler is async-signal-safe: no locks, no allocation, errno
//     saved/restored; the one lazy initialization inside glibc's
//     backtrace (loading the unwinder) is forced at start() time,
//     outside signal context;
//   * symbolization is lazy: raw pcs are resolved via dladdr +
//     __cxa_demangle only at scrape time, with a pc->name cache, so the
//     steady-state cost of a sample is one backtrace + ~30 relaxed
//     atomic stores;
//   * export is the collapsed-stack ("folded") text format flamegraph
//     tooling eats: `thread;outer;...;leaf count` lines under a
//     `# amnesia profile v1` header. merge_collapsed() sums identical
//     stacks across shards/replicas, which is how the shard router
//     serves one aggregate GET /profile exactly like /metrics.
//
// The profiler is a process-wide singleton because SIGPROF is a
// process-wide resource. Shards and cluster replicas that share one
// process (every testbed, and the per-core shards in production) are
// distinguished by *thread*: each ReactorPool thread registers as
// "reactor-<i>", and a per-shard scrape filters on its thread name.
//
// Platform: Linux + glibc (execinfo.h, timer_create). On anything else
// supported() is false and every entry point degrades to a no-op that
// still returns a well-formed (empty) profile.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"

namespace amnesia::obs {

/// One parsed line of a collapsed-stack profile.
struct CollapsedLine {
  std::string stack;  // "thread;outer;...;leaf"
  std::uint64_t count = 0;

  bool operator==(const CollapsedLine&) const = default;
};

class Profiler {
 public:
  /// The process-wide instance (SIGPROF has process scope).
  static Profiler& instance();

  /// True when the platform has the pieces (execinfo + POSIX per-thread
  /// CPU timers). When false, start/register are no-ops and collapsed()
  /// returns just the header.
  static bool supported();

  /// Arms sampling: installs the SIGPROF handler, registers the calling
  /// thread (as "main", unless it already registered under another
  /// name), and starts a CPU-time timer for every registered thread.
  /// Idempotent; a second call with a different period re-arms at the
  /// new period.
  void start(Micros period_us = kDefaultPeriodUs);

  /// Disarms all timers. Rings keep their samples (scrapes still work).
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  Micros period_us() const {
    return period_us_.load(std::memory_order_relaxed);
  }

  /// Registers the calling thread's sample ring under `name` and, if the
  /// profiler is running, arms its timer. Calling again on the same
  /// thread renames its ring. Thread names are sanitized to the collapsed
  /// format's alphabet (no whitespace, no ';').
  void register_thread(const std::string& name);

  /// Disarms and retires the calling thread's ring. Must run on the
  /// thread itself, before it exits (ReactorPool does this for its
  /// threads). Retired rings stay scrapeable until clear() or until the
  /// retired-ring cap evicts them.
  void unregister_thread();

  /// Collapsed-stack export. `window_us` > 0 keeps only samples taken in
  /// the last window (CLOCK_MONOTONIC domain — the /profile?ms=N query);
  /// 0 exports everything retained. A non-empty `thread_filter` keeps
  /// only rings whose thread name matches exactly (the per-shard scrape).
  std::string collapsed(Micros window_us = 0,
                        const std::string& thread_filter = std::string());

  /// Drops every retained sample and all retired rings.
  void clear();

  /// Samples captured process-wide since start (monotonic, relaxed).
  std::uint64_t samples_captured() const {
    return samples_.load(std::memory_order_relaxed);
  }

  static constexpr Micros kDefaultPeriodUs = 2'000;  // 500 Hz per thread
  static constexpr std::size_t kMaxDepth = 24;
  static constexpr std::size_t kRingSlots = 1024;
  /// Retired (unregistered-thread) rings retained for scraping.
  static constexpr std::size_t kMaxRetired = 8;

  /// One thread's sample ring; defined in the .cpp (public only so the
  /// signal handler's thread-local pointer can name the type).
  struct ThreadRing;

 private:
  Profiler() = default;

  void arm_locked(ThreadRing& ring);
  void disarm_locked(ThreadRing& ring);

  std::atomic<bool> running_{false};
  std::atomic<Micros> period_us_{kDefaultPeriodUs};
  std::atomic<std::uint64_t> samples_{0};

  // Registry of rings + the symbol cache; the signal handler never takes
  // this mutex (it reaches its ring through a thread-local pointer).
  struct State;
  State* state_ = nullptr;  // allocated on first use, never freed
  State& state();
};

/// Parses a collapsed profile (header + `stack count` lines). Unknown or
/// malformed lines are skipped — scrape merging must not fail because one
/// shard produced a torn line.
std::vector<CollapsedLine> parse_collapsed(const std::string& text);

/// Sums identical stacks across several collapsed profiles and re-emits
/// one deterministic profile (count descending, then stack ascending) —
/// the shard router's aggregate GET /profile.
std::string merge_collapsed(const std::vector<std::string>& parts);

/// The `n` hottest stacks of a collapsed profile (same order as
/// merge_collapsed output) — the bench hotspot table.
std::vector<CollapsedLine> top_collapsed(const std::string& text,
                                         std::size_t n);

}  // namespace amnesia::obs
