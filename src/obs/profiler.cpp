#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>

#if defined(__linux__) && __has_include(<execinfo.h>)
#define AMNESIA_PROFILER_SUPPORTED 1
#include <dlfcn.h>
#include <execinfo.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <cxxabi.h>

// glibc < 2.35 spells the SIGEV_THREAD_ID field through the union only.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#else
#define AMNESIA_PROFILER_SUPPORTED 0
#endif

namespace amnesia::obs {

namespace {

constexpr const char kProfileHeader[] = "# amnesia profile v1";

}  // namespace

#if AMNESIA_PROFILER_SUPPORTED

namespace {

/// Stack frames the handler itself contributes (the handler and the
/// kernel's signal trampoline) — skipped so samples start at the
/// interrupted pc.
constexpr std::size_t kSkipFrames = 2;

/// Replaces the collapsed format's structural characters (';' separates
/// frames, whitespace separates stack from count) inside one token.
std::string sanitize_token(const std::string& s) {
  std::string out = s.empty() ? std::string("?") : s;
  for (char& c : out) {
    if (c == ';' || c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
  }
  return out;
}

}  // namespace

/// One thread's sample ring. The signal handler (the only writer, always
/// on the owning thread) fills the slot at head % kRingSlots field by
/// field with relaxed atomics, then publishes with a release store of
/// head+1. The scraper walks newest-to-oldest from an acquire load of
/// head and re-checks head after copying a slot: if the writer lapped it
/// mid-copy the sample is torn and the walk stops. Every shared field is
/// an atomic, so the protocol is clean under TSan as well as in theory.
struct Profiler::ThreadRing {
  struct Slot {
    std::atomic<std::int64_t> at{0};  // CLOCK_MONOTONIC us
    std::atomic<std::uint32_t> depth{0};
    std::atomic<std::uintptr_t> pc[kMaxDepth];
  };

  std::string name;  // registry-mutex-protected; fixed while armed
  pid_t tid = 0;
  pthread_t pthread{};
  timer_t timer{};
  bool armed = false;
  bool active = true;  // false once the owning thread unregistered
  std::uint64_t retired_seq = 0;
  std::atomic<std::uint64_t> head{0};
  Slot slots[kRingSlots];
};

namespace {

/// The calling thread's ring. Plain pointer TLS: reads in the signal
/// handler are one mov, with no lazy-init guard to trip over.
thread_local Profiler::ThreadRing* t_ring = nullptr;

std::atomic<bool> g_sampling{false};
std::atomic<std::uint64_t>* g_sample_counter = nullptr;

std::int64_t monotonic_us() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000 +
         ts.tv_nsec / 1'000;
}

extern "C" void amnesia_sigprof_handler(int /*signo*/, siginfo_t* /*info*/,
                                        void* /*ucontext*/) {
  const int saved_errno = errno;
  Profiler::ThreadRing* ring = t_ring;
  if (ring != nullptr && g_sampling.load(std::memory_order_relaxed)) {
    void* frames[Profiler::kMaxDepth + kSkipFrames];
    const int n =
        ::backtrace(frames, Profiler::kMaxDepth + kSkipFrames);
    const std::size_t depth =
        n > static_cast<int>(kSkipFrames)
            ? static_cast<std::size_t>(n) - kSkipFrames
            : 0;
    const std::uint64_t h = ring->head.load(std::memory_order_relaxed);
    auto& slot = ring->slots[h % Profiler::kRingSlots];
    slot.at.store(monotonic_us(), std::memory_order_relaxed);
    slot.depth.store(static_cast<std::uint32_t>(depth),
                     std::memory_order_relaxed);
    for (std::size_t i = 0; i < depth; ++i) {
      slot.pc[i].store(
          reinterpret_cast<std::uintptr_t>(frames[i + kSkipFrames]),
          std::memory_order_relaxed);
    }
    ring->head.store(h + 1, std::memory_order_release);
    if (g_sample_counter != nullptr) {
      g_sample_counter->fetch_add(1, std::memory_order_relaxed);
    }
  }
  errno = saved_errno;
}

}  // namespace

struct Profiler::State {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadRing>> rings;
  std::unordered_map<std::uintptr_t, std::string> symbol_cache;
  std::uint64_t retired_seq = 0;
  bool handler_installed = false;
};

Profiler::State& Profiler::state() {
  static std::once_flag once;
  std::call_once(once, [this] {
    state_ = new State();
    g_sample_counter = &samples_;
  });
  return *state_;
}

Profiler& Profiler::instance() {
  static Profiler* p = new Profiler();  // leaked: outlives every thread
  return *p;
}

bool Profiler::supported() { return true; }

void Profiler::arm_locked(ThreadRing& ring) {
  if (ring.armed || !ring.active) return;
  clockid_t cpu_clock{};
  if (pthread_getcpuclockid(ring.pthread, &cpu_clock) != 0) return;
  sigevent sev{};
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = ring.tid;
  if (timer_create(cpu_clock, &sev, &ring.timer) != 0) return;
  const Micros period = period_us_.load(std::memory_order_relaxed);
  itimerspec its{};
  its.it_interval.tv_sec = period / 1'000'000;
  its.it_interval.tv_nsec = (period % 1'000'000) * 1'000;
  its.it_value = its.it_interval;
  if (timer_settime(ring.timer, 0, &its, nullptr) != 0) {
    timer_delete(ring.timer);
    return;
  }
  ring.armed = true;
}

void Profiler::disarm_locked(ThreadRing& ring) {
  if (!ring.armed) return;
  timer_delete(ring.timer);
  ring.armed = false;
}

void Profiler::start(Micros period_us) {
  State& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  if (period_us <= 0) period_us = kDefaultPeriodUs;
  const bool reperiod =
      period_us != period_us_.load(std::memory_order_relaxed);
  period_us_.store(period_us, std::memory_order_relaxed);
  if (!st.handler_installed) {
    // Force glibc's unwinder to do its one-time lazy setup (it may
    // allocate) outside signal context.
    void* warmup[2];
    ::backtrace(warmup, 2);
    struct sigaction sa{};
    sa.sa_sigaction = amnesia_sigprof_handler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGPROF, &sa, nullptr);
    st.handler_installed = true;
  }
  if (t_ring == nullptr) {
    auto ring = std::make_unique<ThreadRing>();
    ring->name = "main";
    ring->tid = static_cast<pid_t>(::syscall(SYS_gettid));
    ring->pthread = pthread_self();
    t_ring = ring.get();
    st.rings.push_back(std::move(ring));
  }
  g_sampling.store(true, std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  for (auto& ring : st.rings) {
    if (reperiod) disarm_locked(*ring);
    arm_locked(*ring);
  }
}

void Profiler::stop() {
  State& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  g_sampling.store(false, std::memory_order_relaxed);
  running_.store(false, std::memory_order_release);
  for (auto& ring : st.rings) disarm_locked(*ring);
}

void Profiler::register_thread(const std::string& name) {
  State& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  if (t_ring != nullptr && t_ring->active) {
    t_ring->name = sanitize_token(name);
    return;
  }
  auto ring = std::make_unique<ThreadRing>();
  ring->name = sanitize_token(name);
  ring->tid = static_cast<pid_t>(::syscall(SYS_gettid));
  ring->pthread = pthread_self();
  t_ring = ring.get();
  st.rings.push_back(std::move(ring));
  if (running_.load(std::memory_order_relaxed)) {
    arm_locked(*st.rings.back());
  }
}

void Profiler::unregister_thread() {
  State& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  ThreadRing* ring = t_ring;
  if (ring == nullptr) return;
  disarm_locked(*ring);
  ring->active = false;
  ring->retired_seq = ++st.retired_seq;
  t_ring = nullptr;
  // Cap retired rings (drop oldest) so short-lived pools in long test
  // runs cannot grow the registry without bound. Active rings are owned
  // by live threads and never evicted here.
  std::size_t retired = 0;
  for (const auto& r : st.rings) retired += r->active ? 0 : 1;
  while (retired > kMaxRetired) {
    auto oldest = st.rings.end();
    for (auto it = st.rings.begin(); it != st.rings.end(); ++it) {
      if ((*it)->active) continue;
      if (oldest == st.rings.end() ||
          (*it)->retired_seq < (*oldest)->retired_seq) {
        oldest = it;
      }
    }
    if (oldest == st.rings.end()) break;
    st.rings.erase(oldest);
    --retired;
  }
}

namespace {

/// dladdr + demangle, falling back to `module+0x<off>` then raw hex.
std::string symbolize(std::uintptr_t pc) {
  Dl_info info{};
  if (dladdr(reinterpret_cast<void*>(pc), &info) != 0) {
    if (info.dli_sname != nullptr) {
      int status = 0;
      char* demangled =
          abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
      std::string out =
          status == 0 && demangled != nullptr ? demangled : info.dli_sname;
      std::free(demangled);
      return sanitize_token(out);
    }
    if (info.dli_fname != nullptr) {
      const char* base = std::strrchr(info.dli_fname, '/');
      base = base != nullptr ? base + 1 : info.dli_fname;
      char buf[256];
      std::snprintf(buf, sizeof(buf), "%s+0x%zx", base,
                    static_cast<std::size_t>(
                        pc - reinterpret_cast<std::uintptr_t>(
                                 info.dli_fbase)));
      return sanitize_token(buf);
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%zx", static_cast<std::size_t>(pc));
  return buf;
}

}  // namespace

std::string Profiler::collapsed(Micros window_us,
                                const std::string& thread_filter) {
  State& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  const std::int64_t cutoff =
      window_us > 0 ? monotonic_us() - window_us : 0;
  std::map<std::string, std::uint64_t> stacks;
  std::uintptr_t pcs[kMaxDepth];
  for (const auto& ring : st.rings) {
    if (!thread_filter.empty() && ring->name != thread_filter) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t lo = head > kRingSlots ? head - kRingSlots : 0;
    for (std::uint64_t i = head; i-- > lo;) {
      const auto& slot = ring->slots[i % kRingSlots];
      const std::int64_t at = slot.at.load(std::memory_order_relaxed);
      const std::uint32_t depth =
          std::min<std::uint32_t>(slot.depth.load(std::memory_order_relaxed),
                                  kMaxDepth);
      for (std::uint32_t f = 0; f < depth; ++f) {
        pcs[f] = slot.pc[f].load(std::memory_order_relaxed);
      }
      // Torn-sample check: if the writer lapped this slot while we were
      // copying it, everything at and before it is being overwritten.
      if (ring->head.load(std::memory_order_acquire) > i + kRingSlots) break;
      if (at < cutoff) break;  // slots are time-ordered newest-to-oldest
      if (depth == 0) continue;
      std::string stack = ring->name;
      for (std::uint32_t f = depth; f-- > 0;) {  // root ... leaf
        auto [it, inserted] = st.symbol_cache.emplace(pcs[f], std::string());
        if (inserted) it->second = symbolize(pcs[f]);
        stack += ';';
        stack += it->second;
      }
      ++stacks[stack];
    }
  }
  std::vector<CollapsedLine> lines;
  lines.reserve(stacks.size());
  for (auto& [stack, count] : stacks) lines.push_back({stack, count});
  std::sort(lines.begin(), lines.end(), [](const auto& a, const auto& b) {
    return a.count != b.count ? a.count > b.count : a.stack < b.stack;
  });
  std::ostringstream out;
  out << kProfileHeader << '\n';
  for (const auto& line : lines) {
    out << line.stack << ' ' << line.count << '\n';
  }
  return out.str();
}

void Profiler::clear() {
  State& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  for (auto it = st.rings.begin(); it != st.rings.end();) {
    if (!(*it)->active) {
      it = st.rings.erase(it);
      continue;
    }
    // Dropping head to 0 would let the ring's writer republish stale
    // slots; instead mark every retained slot as ancient so window and
    // full scrapes both skip it.
    for (auto& slot : (*it)->slots) {
      slot.depth.store(0, std::memory_order_relaxed);
      slot.at.store(0, std::memory_order_relaxed);
    }
    ++it;
  }
  st.symbol_cache.clear();
}

#else  // !AMNESIA_PROFILER_SUPPORTED

struct Profiler::ThreadRing {};
struct Profiler::State {};

Profiler::State& Profiler::state() {
  static State st;
  return st;
}

Profiler& Profiler::instance() {
  static Profiler* p = new Profiler();
  return *p;
}

bool Profiler::supported() { return false; }
void Profiler::arm_locked(ThreadRing&) {}
void Profiler::disarm_locked(ThreadRing&) {}
void Profiler::start(Micros period_us) {
  if (period_us > 0) period_us_.store(period_us, std::memory_order_relaxed);
}
void Profiler::stop() {}
void Profiler::register_thread(const std::string&) {}
void Profiler::unregister_thread() {}
std::string Profiler::collapsed(Micros, const std::string&) {
  return std::string(kProfileHeader) + "\n";
}
void Profiler::clear() {}

#endif  // AMNESIA_PROFILER_SUPPORTED

// ------------------------------------------------- collapsed-text utils

std::vector<CollapsedLine> parse_collapsed(const std::string& text) {
  std::vector<CollapsedLine> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 ||
        space + 1 >= line.size()) {
      continue;  // torn line from a faulted scrape leg: skip, don't fail
    }
    std::uint64_t count = 0;
    bool numeric = true;
    for (std::size_t i = space + 1; i < line.size(); ++i) {
      const char c = line[i];
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      count = count * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (!numeric || count == 0) continue;
    out.push_back({line.substr(0, space), count});
  }
  return out;
}

std::string merge_collapsed(const std::vector<std::string>& parts) {
  std::map<std::string, std::uint64_t> stacks;
  for (const std::string& part : parts) {
    for (const CollapsedLine& line : parse_collapsed(part)) {
      stacks[line.stack] += line.count;
    }
  }
  std::vector<CollapsedLine> lines;
  lines.reserve(stacks.size());
  for (auto& [stack, count] : stacks) lines.push_back({stack, count});
  std::sort(lines.begin(), lines.end(), [](const auto& a, const auto& b) {
    return a.count != b.count ? a.count > b.count : a.stack < b.stack;
  });
  std::ostringstream out;
  out << kProfileHeader << '\n';
  for (const auto& line : lines) {
    out << line.stack << ' ' << line.count << '\n';
  }
  return out.str();
}

std::vector<CollapsedLine> top_collapsed(const std::string& text,
                                         std::size_t n) {
  std::vector<CollapsedLine> lines = parse_collapsed(text);
  std::sort(lines.begin(), lines.end(), [](const auto& a, const auto& b) {
    return a.count != b.count ? a.count > b.count : a.stack < b.stack;
  });
  if (lines.size() > n) lines.resize(n);
  return lines;
}

}  // namespace amnesia::obs
