#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>
#include <thread>

#include "common/error.h"

namespace amnesia::obs {

// --------------------------------------------------------------- counter

std::size_t assign_counter_cell() {
  // Round-robin assignment instead of a thread-id hash: the first kCells
  // threads are guaranteed pairwise-distinct cells, where a hash can
  // collide two hot threads into one cell and reintroduce the ping-pong
  // this sharding exists to remove.
  static std::atomic<std::size_t> next_cell{0};
  return next_cell.fetch_add(1, std::memory_order_relaxed) % Counter::kCells;
}

// ------------------------------------------------------------- histogram

const std::vector<Micros>& default_latency_bounds() {
  static const std::vector<Micros> kBounds = {
      100,        200,        500,        1'000,      2'000,      5'000,
      10'000,     20'000,     50'000,     100'000,    200'000,    300'000,
      500'000,    700'000,    1'000'000,  1'500'000,  2'000'000,  5'000'000,
      10'000'000, 30'000'000, 60'000'000,
  };
  return kBounds;
}

const std::vector<Micros>& fine_latency_bounds() {
  static const std::vector<Micros> kBounds = {
      1,      2,      5,      10,      20,      50,      100,
      200,    500,    1'000,  2'000,   5'000,   10'000,  20'000,
      50'000, 100'000, 200'000, 500'000, 1'000'000,
  };
  return kBounds;
}

Histogram::Histogram(std::vector<Micros> bounds) {
  if (bounds.empty()) throw Error("Histogram: needs at least one bound");
  if (!std::is_sorted(bounds.begin(), bounds.end()) ||
      std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end()) {
    throw Error("Histogram: bounds must be strictly ascending");
  }
  data_.bounds = std::move(bounds);
  data_.counts.assign(data_.bounds.size() + 1, 0);
}

void Histogram::record(Micros value, const TraceContext& ctx,
                       std::string attr) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it =
      std::lower_bound(data_.bounds.begin(), data_.bounds.end(), value);
  const auto bucket = static_cast<std::size_t>(it - data_.bounds.begin());
  ++data_.counts[bucket];
  if (data_.count == 0) {
    data_.min = value;
    data_.max = value;
  } else {
    data_.min = std::min(data_.min, value);
    data_.max = std::max(data_.max, value);
  }
  ++data_.count;
  data_.sum += value;
  if (ctx.trace_id.valid() && ctx.sampled) {
    for (char& c : attr) {
      if (std::isspace(static_cast<unsigned char>(c))) c = '_';
    }
    // At most one exemplar per bucket; within a process the latest
    // recording wins (freshness), across processes merge_snapshot keeps
    // the larger value (tail bias).
    Exemplar ex{bucket, ctx.trace_id, value, std::move(attr)};
    auto pos = std::lower_bound(
        data_.exemplars.begin(), data_.exemplars.end(), bucket,
        [](const Exemplar& e, std::size_t b) { return e.bucket < b; });
    if (pos != data_.exemplars.end() && pos->bucket == bucket) {
      *pos = std::move(ex);
    } else {
      data_.exemplars.insert(pos, std::move(ex));
    }
  }
}

double Histogram::mean() const {
  const HistogramSnapshot snap = locked();
  return snap.count == 0
             ? 0.0
             : static_cast<double>(snap.sum) /
                   static_cast<double>(snap.count);
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(data_.counts.begin(), data_.counts.end(), 0);
  data_.count = 0;
  data_.sum = 0;
  data_.min = 0;
  data_.max = 0;
  data_.exemplars.clear();
}

Micros quantile(const HistogramSnapshot& h, double q) {
  if (h.count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based), as in nearest-rank quantiles.
  const auto rank = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(q * static_cast<double>(h.count))));
  std::uint64_t cumulative = 0;
  Micros value = h.max;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    cumulative += h.counts[i];
    if (cumulative >= rank) {
      value = i < h.bounds.size() ? h.bounds[i] : h.max;
      break;
    }
  }
  return std::clamp(value, h.min, h.max);
}

// -------------------------------------------------------------- registry

void MetricsRegistry::check_name(const std::string& name) {
  if (name.empty()) throw Error("metric name must not be empty");
  for (const char c : name) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      throw Error("metric name must not contain whitespace: '" + name + "'");
    }
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  check_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  check_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histogram(name, default_latency_bounds());
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<Micros> bounds) {
  check_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

namespace {

SpanRecord to_record(const TraceSpan& span) {
  SpanRecord rec;
  rec.id = span.id;
  rec.parent = span.parent;
  rec.name = span.name;
  rec.start = span.start;
  rec.end = span.end;
  rec.finished = span.finished;
  return rec;
}

}  // namespace

SpanId MetricsRegistry::begin_span(const std::string& name, SpanId parent) {
  check_name(name);
  return tracer_.start_legacy_span(name, "", parent).span_id;
}

void MetricsRegistry::end_span(SpanId id) { tracer_.end_span_id(id); }

std::vector<SpanRecord> MetricsRegistry::spans() const {
  std::vector<SpanRecord> out;
  for (const TraceSpan& span : tracer_.snapshot()) {
    out.push_back(to_record(span));
  }
  return out;
}

std::vector<SpanRecord> MetricsRegistry::spans_named(
    const std::string& name) const {
  std::vector<SpanRecord> out;
  for (const TraceSpan& span : tracer_.snapshot()) {
    if (span.name == name) out.push_back(to_record(span));
  }
  return out;
}

std::vector<SpanRecord> MetricsRegistry::children_of(SpanId parent) const {
  std::vector<SpanRecord> out;
  for (const TraceSpan& span : tracer_.snapshot()) {
    if (span.parent == parent && span.finished) {
      out.push_back(to_record(span));
    }
  }
  return out;
}

Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h->data();
  return snap;
}

void MetricsRegistry::reset_values() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, h] : histograms_) h->reset();
  }
  tracer_.clear();
  events_.clear();
}

// ------------------------------------------------------------- exporters

namespace {

constexpr const char kTextHeader[] = "# amnesia metrics v1";

}  // namespace

namespace {

/// Folds `src`'s exemplars into `dst` (same bounds): per bucket the
/// larger-valued exemplar wins, ties keep `dst`'s. Buckets past `dst`'s
/// range (a torn or hostile snapshot) are dropped.
void merge_exemplars(HistogramSnapshot& dst, const HistogramSnapshot& src) {
  for (const Exemplar& ex : src.exemplars) {
    if (ex.bucket >= dst.counts.size()) continue;
    auto pos = std::lower_bound(
        dst.exemplars.begin(), dst.exemplars.end(), ex.bucket,
        [](const Exemplar& e, std::size_t b) { return e.bucket < b; });
    if (pos != dst.exemplars.end() && pos->bucket == ex.bucket) {
      if (ex.value > pos->value) *pos = ex;
    } else {
      dst.exemplars.insert(pos, ex);
    }
  }
}

}  // namespace

void merge_snapshot(Snapshot& into, const Snapshot& other) {
  for (const auto& [name, v] : other.counters) into.counters[name] += v;
  for (const auto& [name, v] : other.gauges) into.gauges[name] += v;
  for (const auto& [name, h] : other.histograms) {
    auto [it, inserted] = into.histograms.emplace(name, h);
    if (inserted) continue;
    HistogramSnapshot& dst = it->second;
    if (dst.bounds == h.bounds) {
      for (std::size_t i = 0; i < dst.counts.size(); ++i) {
        dst.counts[i] += h.counts[i];
      }
      merge_exemplars(dst, h);
    }
    if (h.count > 0) {
      dst.min = dst.count == 0 ? h.min : std::min(dst.min, h.min);
      dst.max = dst.count == 0 ? h.max : std::max(dst.max, h.max);
    }
    dst.count += h.count;
    dst.sum += h.sum;
  }
}

std::string to_text(const Snapshot& snapshot) {
  std::ostringstream out;
  out << kTextHeader << '\n';
  for (const auto& [name, value] : snapshot.counters) {
    out << "counter " << name << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << "gauge " << name << ' ' << value << '\n';
  }
  for (const auto& [name, h] : snapshot.histograms) {
    out << "hist " << name << " meta " << h.count << ' ' << h.sum << ' '
        << h.min << ' ' << h.max << '\n';
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      out << "hist " << name << " le ";
      if (i < h.bounds.size()) {
        out << h.bounds[i];
      } else {
        out << "+inf";
      }
      out << ' ' << h.counts[i] << '\n';
    }
    for (const Exemplar& ex : h.exemplars) {
      out << "hist " << name << " ex " << ex.bucket << ' '
          << trace_id_hex(ex.trace_id) << ' ' << ex.value << ' '
          << (ex.attr.empty() ? "-" : ex.attr) << '\n';
    }
  }
  return out.str();
}

Snapshot parse_text(const std::string& text) {
  std::istringstream in(text);
  std::string header;
  if (!std::getline(in, header) || header != kTextHeader) {
    throw FormatError("metrics text: missing '# amnesia metrics v1' header");
  }
  Snapshot snap;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind, name;
    if (!(fields >> kind >> name)) {
      throw FormatError("metrics text: malformed line: " + line);
    }
    try {
      if (kind == "counter") {
        std::string value;
        fields >> value;
        snap.counters[name] = std::stoull(value);
      } else if (kind == "gauge") {
        std::string value;
        fields >> value;
        snap.gauges[name] = std::stoll(value);
      } else if (kind == "hist") {
        std::string sub;
        fields >> sub;
        HistogramSnapshot& h = snap.histograms[name];
        if (sub == "meta") {
          std::string count, sum, min, max;
          fields >> count >> sum >> min >> max;
          h.count = std::stoull(count);
          h.sum = std::stoll(sum);
          h.min = std::stoll(min);
          h.max = std::stoll(max);
        } else if (sub == "le") {
          std::string bound, count;
          fields >> bound >> count;
          if (bound != "+inf") h.bounds.push_back(std::stoll(bound));
          h.counts.push_back(std::stoull(count));
        } else if (sub == "ex") {
          std::string bucket, trace, value, attr;
          fields >> bucket >> trace >> value >> attr;
          const auto id = parse_trace_id_hex(trace);
          if (!id) {
            throw FormatError("metrics text: bad exemplar trace: " + line);
          }
          Exemplar ex;
          ex.bucket = std::stoull(bucket);
          ex.trace_id = *id;
          ex.value = std::stoll(value);
          if (attr != "-") ex.attr = attr;
          h.exemplars.push_back(std::move(ex));
        } else {
          throw FormatError("metrics text: unknown hist line: " + line);
        }
      } else {
        throw FormatError("metrics text: unknown kind: " + kind);
      }
    } catch (const std::logic_error&) {  // stoull/stoll failures
      throw FormatError("metrics text: bad number in line: " + line);
    }
    if (fields.fail()) {
      throw FormatError("metrics text: truncated line: " + line);
    }
  }
  return snap;
}

namespace {

void json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      default: out << c;
    }
  }
  out << '"';
}

}  // namespace

std::string to_json(const Snapshot& snapshot) {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out << (first ? "\n    " : ",\n    ");
    json_string(out, name);
    out << ": " << value;
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out << (first ? "\n    " : ",\n    ");
    json_string(out, name);
    out << ": " << value;
    first = false;
  }
  out << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    out << (first ? "\n    " : ",\n    ");
    json_string(out, name);
    out << ": {\"count\": " << h.count << ", \"sum\": " << h.sum
        << ", \"min\": " << h.min << ", \"max\": " << h.max
        << ", \"p50\": " << quantile(h, 0.50)
        << ", \"p95\": " << quantile(h, 0.95)
        << ", \"p99\": " << quantile(h, 0.99) << ", \"buckets\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out << ", ";
      out << "{\"le\": ";
      if (i < h.bounds.size()) {
        out << h.bounds[i];
      } else {
        out << "\"+inf\"";
      }
      out << ", \"count\": " << h.counts[i] << '}';
    }
    out << ']';
    if (!h.exemplars.empty()) {
      out << ", \"exemplars\": [";
      for (std::size_t i = 0; i < h.exemplars.size(); ++i) {
        const Exemplar& ex = h.exemplars[i];
        if (i > 0) out << ", ";
        out << "{\"le\": ";
        if (ex.bucket < h.bounds.size()) {
          out << h.bounds[ex.bucket];
        } else {
          out << "\"+inf\"";
        }
        out << ", \"bucket\": " << ex.bucket << ", \"trace_id\": \""
            << trace_id_hex(ex.trace_id) << "\", \"value\": " << ex.value
            << ", \"attr\": ";
        json_string(out, ex.attr);
        out << '}';
      }
      out << ']';
    }
    out << '}';
    first = false;
  }
  out << (first ? "}" : "\n  }") << "\n}\n";
  return out.str();
}

}  // namespace amnesia::obs
