// Observability layer: metrics registry, latency histograms, trace spans.
//
// Every number the evaluation reports (Fig. 3 latency percentiles, the
// thread-count ablation, Tables 1-3 byte counts) is ultimately a
// measurement of the bilateral protocol, and before this module every
// bench binary hand-rolled its own counters and accumulators. The obs
// layer gives all subsystems one deterministic instrumentation surface:
//
//   Counter    monotonically increasing event count;
//   Gauge      point-in-time signed value (queue depth, busy workers),
//              with a high-watermark helper;
//   Histogram  fixed-bucket latency histogram over Micros values with
//              deterministic p50/p95/p99 queries — quantiles are computed
//              from bucket boundaries and clamped to the observed
//              [min, max], so for any recorded sample set
//              p50 <= p95 <= p99 <= max holds exactly;
//   Span       one traced interval with a parent id, used to decompose a
//              bilateral round (browser -> server -> rendezvous -> phone
//              -> server -> browser) into its phases.
//
// All timing comes from an injected Clock — under simnet::Simulation that
// is virtual time, so two runs with the same seed export byte-identical
// snapshots. Nothing here reads the wall clock.
//
// Snapshots export to a plain-text line format (served on GET /metrics)
// that parses back losslessly, and to JSON for BENCH_*.json artifacts.
// See docs/OBSERVABILITY.md for the naming convention and span model.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "obs/trace.h"

namespace amnesia::obs {

// Counter and Gauge are lock-free atomics (relaxed — they are statistics,
// not synchronization), so the real event-loop thread, worker threads, and
// a metrics scraper may touch them concurrently. Histogram and the
// registry's name->handle maps take a mutex instead: multi-word updates
// have no cheap atomic form and neither is on a per-byte hot path.

/// Assigns the calling thread its counter cell (round-robin over kCells;
/// the first kCells threads are guaranteed pairwise-distinct cells).
/// Out-of-line cold path of counter_cell_index() below.
std::size_t assign_counter_cell();

/// This thread's cell index, cached in a trivially-initialized
/// thread_local so the hot path is one TLS load and one predictable
/// branch — no per-increment hashing, no TLS init guard (a
/// function-local `thread_local const` would re-check its guard byte on
/// every inc()).
inline std::size_t counter_cell_index() {
  constexpr std::size_t kUnassigned = ~std::size_t{0};
  thread_local std::size_t cell = kUnassigned;
  if (cell == kUnassigned) cell = assign_counter_cell();
  return cell;
}

/// Monotonic counter, sharded into cache-line-sized per-thread cells so
/// the net.* / securechan.* hot paths (event-loop thread + workers all
/// bumping the same handle) never bounce one cache line between cores.
/// inc() touches exactly one cell; value() folds all cells, so a reading
/// racing writers may miss in-flight increments — same relaxed semantics
/// as the single-atomic version, just without the contention.
class Counter {
 public:
  static constexpr std::size_t kCells = 8;

  void inc(std::uint64_t n = 1) {
    cells_[counter_cell_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };

  Cell cells_[kCells];
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  /// High-watermark update: keeps the maximum value ever set.
  void track_max(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A per-bucket exemplar: one real trace that landed in the bucket, so a
/// bad histogram bucket links to a GET /trace/<id> tree instead of being
/// an anonymous number. `bucket` indexes `counts` (the trailing overflow
/// bucket included); `attr` is one whitespace-free token of context (the
/// route pattern, the span name).
struct Exemplar {
  std::size_t bucket = 0;
  TraceId trace_id;
  Micros value = 0;
  std::string attr;

  bool operator==(const Exemplar&) const = default;
};

/// The exported state of one histogram. `bounds` are inclusive upper
/// bucket bounds in ascending order; `counts` has one extra trailing
/// overflow bucket (conceptually "+inf"). `exemplars` is sparse (at most
/// one per bucket), sorted by bucket index.
struct HistogramSnapshot {
  std::vector<Micros> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  std::int64_t sum = 0;
  Micros min = 0;
  Micros max = 0;
  std::vector<Exemplar> exemplars;

  bool operator==(const HistogramSnapshot&) const = default;
};

/// Deterministic bucket-boundary quantile, clamped to the observed
/// [min, max]; returns 0 on an empty histogram. Monotonic in q.
Micros quantile(const HistogramSnapshot& h, double q);

/// Default latency buckets, exponential-ish from 100 us to 60 s.
const std::vector<Micros>& default_latency_bounds();

/// Finer buckets from 1 us to 1 s for in-process intervals (reactor
/// callback durations, wake->dispatch delays) that live far below the
/// default bounds' 100 us floor.
const std::vector<Micros>& fine_latency_bounds();

class Histogram {
 public:
  explicit Histogram(std::vector<Micros> bounds = default_latency_bounds());

  /// Records a value; if a sampled trace context is ambient on this
  /// thread (obs::current_trace()), it is captured as the bucket's
  /// exemplar (latest recording wins).
  void record(Micros value) { record(value, current_trace()); }
  /// Records with an explicit exemplar context (invalid/unsampled ctx
  /// records no exemplar). `attr` is sanitized to one token.
  void record(Micros value, const TraceContext& ctx, std::string attr = {});
  Micros quantile(double q) const { return obs::quantile(data(), q); }
  std::uint64_t count() const { return locked().count; }
  std::int64_t sum() const { return locked().sum; }
  Micros min() const { return locked().min; }
  Micros max() const { return locked().max; }
  /// Mean in microseconds (0 when empty).
  double mean() const;
  /// Consistent copy of the current state.
  HistogramSnapshot data() const { return locked(); }
  void reset();

 private:
  HistogramSnapshot locked() const {
    std::lock_guard<std::mutex> lock(mu_);
    return data_;
  }

  mutable std::mutex mu_;
  HistogramSnapshot data_;
};

// SpanId comes from obs/trace.h; the registry's legacy span API below is
// a shim over the Tracer in the same file.

/// One traced interval. `parent` is 0 for root spans. `end` is meaningful
/// only once `finished` is true.
struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;
  std::string name;
  Micros start = 0;
  Micros end = 0;
  bool finished = false;
};

/// A full, comparable export of the registry's metric state. Spans are
/// kept out of the snapshot: they are a trace, not a metric, and are read
/// through MetricsRegistry::spans().
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool operator==(const Snapshot&) const = default;
};

/// Folds `other` into `into`: counters and gauges add; histograms with
/// identical bucket bounds merge bucket-wise (count/sum add, min/max
/// widen), while a bounds mismatch keeps `into`'s series untouched and
/// adds only the scalar count/sum. Exemplars survive the merge: per
/// bucket the larger-valued exemplar wins (tail-biased and commutative
/// on distinct values), so an aggregate scrape still links its worst
/// buckets to real traces. Used by the shard router to serve one
/// aggregate GET /metrics over shared-nothing per-shard registries;
/// merging a snapshot into an empty one reproduces it exactly.
void merge_snapshot(Snapshot& into, const Snapshot& other);

/// Plain-text export ("# amnesia metrics v1" line format). Lossless:
/// parse_text(to_text(s)) == s.
std::string to_text(const Snapshot& snapshot);

/// Parses the to_text format. Throws FormatError on malformed input.
Snapshot parse_text(const std::string& text);

/// JSON export (write-only) with derived p50/p95/p99 per histogram —
/// the BENCH_*.json-compatible shape benches embed in their artifacts.
std::string to_json(const Snapshot& snapshot);

/// Named-metric registry plus span log. Handles returned by counter() /
/// gauge() / histogram() are stable for the registry's lifetime, so hot
/// paths resolve the name once and keep the pointer.
class MetricsRegistry {
 public:
  /// `clock` drives span and ScopedTimer timestamps; it may be null when
  /// only counters/gauges/histograms-with-explicit-values are used.
  explicit MetricsRegistry(const Clock* clock = nullptr)
      : clock_(clock), tracer_(clock), events_(clock) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void set_clock(const Clock* clock) {
    clock_ = clock;
    tracer_.set_clock(clock);
    events_.set_clock(clock);
  }
  Micros now() const { return clock_ ? clock_->now_us() : 0; }

  /// The distributed tracer sharing this registry's clock. New code uses
  /// it directly; the begin_span/end_span API below shims onto it.
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  /// The structured event log (resilience events, shed 503s, ...),
  /// served on GET /events next to /metrics.
  EventLog& events() { return events_; }
  const EventLog& events() const { return events_; }

  /// Finds or creates. Names must be non-empty and whitespace-free (they
  /// are tokens of the text export format); throws Error otherwise.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  /// Creates with explicit bucket bounds; bounds are ignored if the
  /// histogram already exists (first registration wins).
  Histogram& histogram(const std::string& name, std::vector<Micros> bounds);

  // -- spans (legacy shim over tracer()) -------------------------------
  /// Starts a span at the current clock time. parent = 0 means root.
  SpanId begin_span(const std::string& name, SpanId parent = 0);
  /// Finishes a span at the current clock time. Unknown/already-finished
  /// ids are ignored (a timed-out round may race its own cleanup).
  void end_span(SpanId id);
  /// The span log in creation order (a merged copy of the tracer's
  /// bounded store; the old always-growing vector is gone).
  std::vector<SpanRecord> spans() const;
  /// All spans with this name, in start order.
  std::vector<SpanRecord> spans_named(const std::string& name) const;
  /// Finished direct children of `parent`, in start order.
  std::vector<SpanRecord> children_of(SpanId parent) const;
  void clear_spans() { tracer_.clear(); }

  /// Comparable export of all counters/gauges/histograms.
  Snapshot snapshot() const;

  /// Zeroes every metric value and drops all spans, keeping the metric
  /// objects (and any held handles) alive. Used to discard warm-up
  /// traffic before a measured experiment.
  void reset_values();

 private:
  static void check_name(const std::string& name);

  const Clock* clock_;
  /// Guards the name->handle maps. Handles stay valid without the lock
  /// (unique_ptr targets never move). Spans live in tracer_, which has
  /// its own finer-grained locking.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  Tracer tracer_;
  EventLog events_;
};

/// RAII timer: records the elapsed clock time into a histogram on
/// destruction. For synchronous sections only — async intervals capture
/// the start time in their callback chain instead.
class ScopedTimer {
 public:
  ScopedTimer(const Clock& clock, Histogram& hist)
      : clock_(clock), hist_(hist), start_(clock.now_us()) {}
  ~ScopedTimer() { hist_.record(clock_.now_us() - start_); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const Clock& clock_;
  Histogram& hist_;
  Micros start_;
};

}  // namespace amnesia::obs
