// Distributed tracing: Dapper-style trace/span ids, explicit context
// propagation, a bounded lock-light span store, and a structured event log.
//
// The Fig. 3 evaluation decomposes one bilateral login across five
// components (browser -> server -> GCM -> phone -> server -> browser).
// Before this module the obs layer could only record disconnected
// per-process spans; this one threads a TraceContext across every hop —
// an X-Amnesia-Trace header on the websvc legs, a plaintext metadata slot
// in securechan data records, a trace field in net::Rpc frames, and a
// field inside rendezvous push payloads — so one login produces one tree.
//
//   TraceId      128 bits {hi, lo}; never all-zero for a live trace.
//   SpanId       64 bits, process-wide monotonic; 0 means "no span".
//   TraceContext the propagated triple (trace id, span id, sampled bit).
//   Tracer       allocates ids, records spans, samples at the root.
//   EventLog     leveled bounded ring of structured events, tagged with
//                the ambient trace id (resilience emits retries, breaker
//                transitions, fault injections, shed 503s into it).
//
// Store design: spans being *recorded* (started, not yet ended) live in a
// bounded id-keyed table; *completed* spans are appended to one of a
// fixed set of thread-sharded ring buffers (shard picked by thread id),
// merged and sorted only at snapshot time. End is an O(1) table hit plus
// an uncontended shard push — replacing the single-vector O(n) reverse
// scan the registry used before — and memory is bounded on both sides
// (drop-oldest, with a dropped counter) no matter how long the process
// runs.
//
// Determinism: ids come from a per-tracer counter, never from a random
// source, and the probabilistic sampler hashes the trace id — so a
// seeded simulation run exports byte-identical trace artifacts.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/clock.h"

namespace amnesia::obs {

using SpanId = std::uint64_t;

/// 128-bit trace identifier. All-zero = "no trace".
struct TraceId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool valid() const { return hi != 0 || lo != 0; }
  bool operator==(const TraceId&) const = default;
};

/// The propagated context: which trace, which span is the current parent,
/// and whether this trace is being recorded. Ids are allocated even for
/// unsampled traces so downstream hops stay correlated.
struct TraceContext {
  TraceId trace_id;
  SpanId span_id = 0;
  bool sampled = true;

  bool valid() const { return trace_id.valid() && span_id != 0; }
};

/// Wire header name used on the websvc legs (and reused verbatim as the
/// plaintext trace slot in securechan records and net::Rpc frames).
inline constexpr const char kTraceHeaderName[] = "X-Amnesia-Trace";

/// Serialized context: `<32 hex trace>-<16 hex span>-<2 hex flags>`,
/// lowercase, fixed 51 chars. Flags: bit 0 = sampled.
std::string format_trace_header(const TraceContext& ctx);
constexpr std::size_t kTraceHeaderLen = 32 + 1 + 16 + 1 + 2;

/// Strict parse of the header format: exact length, lowercase hex only,
/// dashes in the fixed positions, non-zero trace and span ids, flags in
/// {00, 01}. Anything else -> nullopt (the receiver starts a fresh root
/// and must never echo the hostile bytes back).
std::optional<TraceContext> parse_trace_header(std::string_view s);

/// `<32 hex>` of a trace id, for URLs (`GET /trace/<id>`) and log tags.
std::string trace_id_hex(TraceId id);
std::optional<TraceId> parse_trace_id_hex(std::string_view s);

struct SpanAttr {
  std::string key;
  std::string value;
};

struct SpanEvent {
  Micros at = 0;
  std::string message;
};

/// One recorded span. `parent` is 0 for a root. `component` names the
/// process that recorded it (browser/server/gcm/phone/client).
struct TraceSpan {
  TraceId trace_id;
  SpanId id = 0;
  SpanId parent = 0;
  std::string name;
  std::string component;
  Micros start = 0;
  Micros end = 0;
  bool finished = false;
  std::vector<SpanAttr> attributes;
  std::vector<SpanEvent> events;
};

/// Process-wide tracer. Thread-safe; hot paths touch one small mutex
/// (open table) or one shard mutex (completion), never both.
class Tracer {
 public:
  explicit Tracer(const Clock* clock = nullptr) : clock_(clock) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_clock(const Clock* clock) { clock_ = clock; }
  Micros now() const { return clock_ ? clock_->now_us() : 0; }

  /// Head-based sampling probability for new roots, in [0, 1]. Defaults
  /// to 1.0 (always-on: tests and benches want every trace). Remote
  /// contexts carry their root's decision and are never re-sampled.
  void set_sample_probability(double p);
  double sample_probability() const;

  /// Starts a new root span (fresh trace id, sampling decided here).
  TraceContext start_trace(std::string name, std::string component);
  /// Starts a child span under `parent` (local or remote context). An
  /// invalid parent degrades to a fresh root.
  TraceContext start_span(std::string name, std::string component,
                          const TraceContext& parent);
  /// Attaches a key/value attribute to the (still open) span of `ctx`.
  void add_attribute(const TraceContext& ctx, std::string key,
                     std::string value);
  /// Appends a timestamped event to the (still open) span of `ctx`.
  void add_event(const TraceContext& ctx, std::string message);
  /// Ends the span of `ctx` at the current clock time. Unknown, already
  /// finished, and unsampled contexts are no-ops.
  void end(const TraceContext& ctx) { end_span_id(ctx.span_id); }
  /// Legacy-id variant used by the MetricsRegistry span shim.
  void end_span_id(SpanId id);
  /// Legacy shim: starts a span under an explicit parent id (0 = root),
  /// inheriting the parent's trace when it is still open and always
  /// recording (the legacy API predates sampling).
  TraceContext start_legacy_span(std::string name, std::string component,
                                 SpanId parent);

  /// All recorded spans (completed rings merged with still-open spans),
  /// sorted by (start, id) — i.e. creation order under one clock.
  std::vector<TraceSpan> snapshot() const;
  /// The spans of one trace, same order. Empty if unknown/evicted.
  std::vector<TraceSpan> trace(TraceId id) const;

  /// Observer invoked with every locally completed span (ends and open-
  /// table evictions; imported spans are excluded so replication never
  /// echoes). Install once before traffic starts — the call is made
  /// outside the store locks and is not synchronized against resets.
  using CompleteHook = std::function<void(const TraceSpan&)>;
  void set_on_complete(CompleteHook hook) { on_complete_ = std::move(hook); }

  /// Observer invoked when a sampled span is opened (same caveats as
  /// set_on_complete). The cluster layer ships span *starts* as well as
  /// ends: the spans still open on a crashed primary (the protocol round,
  /// the phone wait) exist on the follower as unfinished stubs, so the
  /// merged tree keeps its parent chain across the failover.
  using StartHook = std::function<void(const TraceSpan&)>;
  void set_on_start(StartHook hook) { on_start_ = std::move(hook); }

  /// Injects an externally recorded span into the completed store — the
  /// cluster layer ships a primary's spans into the follower's tracer so
  /// a failover survivor can serve the whole tree. Does not fire the
  /// on_complete hook.
  void import_completed(TraceSpan span) { complete(std::move(span), false); }

  /// Re-bases the span-id counter. Cluster replicas carve out disjoint id
  /// ranges so a tree merged across two servers stays unambiguous. Call
  /// before any span is started.
  void seed_span_ids(SpanId first) {
    next_id_.store(first ? first : 1, std::memory_order_relaxed);
  }

  void clear();
  /// Completed spans evicted from full rings + open spans evicted from a
  /// full table, since construction or the last clear().
  std::uint64_t dropped() const;

  /// Store bounds (fixed at compile time; exposed for tests/docs).
  static constexpr std::size_t kMaxOpenSpans = 4096;
  static constexpr std::size_t kShards = 16;
  static constexpr std::size_t kShardCapacity = 2048;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::vector<TraceSpan> ring;  // capacity kShardCapacity, drop-oldest
    std::size_t next = 0;         // write cursor once the ring is full
    std::uint64_t dropped = 0;
  };

  SpanId next_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  bool sample_trace(TraceId id) const;
  TraceContext open_span(std::string name, std::string component,
                         TraceId trace_id, SpanId parent, bool sampled);
  Shard& my_shard();
  void complete(TraceSpan span, bool notify = true);

  const Clock* clock_;
  std::atomic<std::uint64_t> next_id_{1};
  /// Sampling probability as a 2^53 threshold (lock-free reads).
  std::atomic<std::uint64_t> sample_threshold_{1ull << 53};

  /// Open (started, not ended) spans, keyed by id; `open_order_` bounds
  /// the table by eviction age. A leaked span (never ended) is evicted
  /// to its shard unfinished once kMaxOpenSpans newer spans exist.
  mutable std::mutex open_mu_;
  std::unordered_map<SpanId, TraceSpan> open_;
  std::deque<SpanId> open_order_;
  std::uint64_t open_evicted_ = 0;
  CompleteHook on_complete_;
  StartHook on_start_;

  Shard shards_[kShards];
};

// ------------------------------------------------------- ambient context
//
// Hop boundaries (HTTP client/server, secure channel, Rpc handlers) set
// the current context for the duration of a dispatch so interior layers
// (resilience, storage) can tag events without plumbing a parameter
// through every signature. Thread-local: each real thread — and the one
// simulation thread — has its own slot.

/// The context most recently installed on this thread (invalid if none).
TraceContext current_trace();

/// RAII: installs `ctx` as the thread's current context, restoring the
/// previous one on destruction.
class ScopedTrace {
 public:
  explicit ScopedTrace(const TraceContext& ctx);
  ~ScopedTrace();

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceContext prev_;
};

// ------------------------------------------------------------- event log

enum class EventLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError };

const char* event_level_name(EventLevel level);
/// Strict inverse of event_level_name ("debug"/"info"/"warn"/"error");
/// anything else -> nullopt. Used by the GET /events?level= filter, which
/// must reject rather than guess at hostile query values.
std::optional<EventLevel> parse_event_level(std::string_view name);

struct EventRecord {
  Micros at = 0;
  EventLevel level = EventLevel::kInfo;
  std::string component;  // "resilience", "websvc", ...
  std::string message;
  TraceId trace_id;  // all-zero when no trace was active
};

/// Bounded structured log (drop-oldest ring). emit() tags each record
/// with the ambient current_trace() id, which is what ties a breaker
/// transition or a shed 503 back to the login that suffered it.
class EventLog {
 public:
  explicit EventLog(const Clock* clock = nullptr,
                    std::size_t capacity = kDefaultCapacity)
      : clock_(clock), capacity_(capacity ? capacity : 1) {}

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  void set_clock(const Clock* clock) { clock_ = clock; }

  void emit(EventLevel level, std::string component, std::string message);

  std::vector<EventRecord> snapshot() const;
  /// One JSON object per line ({"at":..,"level":..,"component":..,
  /// "message":..,"trace_id":".."}) — the GET /events body. Keeps
  /// records with level >= min_level and (when since > 0) at > since,
  /// so scrapers can poll incrementally instead of re-downloading the
  /// whole ring.
  std::string to_json_lines(EventLevel min_level = EventLevel::kDebug,
                            Micros since = 0) const;
  void clear();
  std::uint64_t dropped() const;
  std::size_t capacity() const { return capacity_; }

  static constexpr std::size_t kDefaultCapacity = 1024;

 private:
  const Clock* clock_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<EventRecord> ring_;
  std::uint64_t dropped_ = 0;
};

// ------------------------------------------------- trace-tree analysis

/// JSON export of one trace (array of span objects, creation order) —
/// the GET /trace/<id> body and the bench artifact shape.
std::string trace_to_json(const std::vector<TraceSpan>& spans);

/// Per-span-name critical-path attribution over one or more trace trees:
/// `self_us` is span duration minus the union of its children's
/// intervals (time attributable to the hop itself), `total_us` the full
/// duration. Unfinished spans are skipped. Sorted by self_us descending.
struct CriticalPathEntry {
  std::string name;
  std::string component;
  std::uint64_t count = 0;
  Micros total_us = 0;
  Micros self_us = 0;
};

std::vector<CriticalPathEntry> critical_path(
    const std::vector<TraceSpan>& spans);

}  // namespace amnesia::obs
