#include "obs/slowlog.h"

#include <cstdio>
#include <sstream>

namespace amnesia::obs {

namespace {

void json_escaped(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

void SlowLog::record(SlowLogEntry entry) {
  if (entry.blame.size() > kMaxBlame) entry.blame.resize(kMaxBlame);
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() == capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(entry));
}

std::vector<SlowLogEntry> SlowLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::string SlowLog::to_json_lines(Micros since) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const SlowLogEntry& e : ring_) {
    if (since > 0 && e.at <= since) continue;
    out << "{\"at\": " << e.at << ", \"trace_id\": \""
        << trace_id_hex(e.trace_id) << "\", \"name\": ";
    json_escaped(out, e.name);
    out << ", \"outcome\": ";
    json_escaped(out, e.outcome);
    out << ", \"duration_us\": " << e.duration_us
        << ", \"threshold_us\": " << e.threshold_us
        << ", \"loop_delay_us\": " << e.loop_delay_us << ", \"degraded\": "
        << (e.degraded ? "true" : "false") << ", \"breaker_open\": "
        << (e.breaker_open ? "true" : "false") << ", \"blame\": [";
    bool first = true;
    for (const CriticalPathEntry& b : e.blame) {
      if (!first) out << ", ";
      first = false;
      out << "{\"name\": ";
      json_escaped(out, b.name);
      out << ", \"component\": ";
      json_escaped(out, b.component);
      out << ", \"count\": " << b.count << ", \"total_us\": " << b.total_us
          << ", \"self_us\": " << b.self_us << '}';
    }
    out << "]}\n";
  }
  return out.str();
}

void SlowLog::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  dropped_ = 0;
}

std::uint64_t SlowLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace amnesia::obs
