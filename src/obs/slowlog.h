// Slow-request flight recorder.
//
// Histograms say a p99 exists; exemplars link one bucket to one trace;
// the slowlog keeps the *story* of every request that blew the SLO while
// it is still cheap to ask why. When a round's end-to-end duration
// exceeds a configured threshold, the server records a structured entry:
// the trace id (-> GET /trace/<id>), a per-hop critical-path blame table
// computed with obs::critical_path over the round's own trace tree, the
// resilience flags that were in effect (breaker open, push->poll
// degrade), and the reactor-loop dispatch delay observed at admission —
// the four usual suspects for a slow login, pre-joined. Entries live in
// a bounded drop-oldest ring served at GET /slowlog as JSON lines.
//
// Threshold 0 disables recording (the default: bit-compat for existing
// deployments and deterministic artifacts). should_record() is a single
// relaxed atomic load so the per-request cost of a disabled slowlog is
// one predictable branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "obs/trace.h"

namespace amnesia::obs {

struct SlowLogEntry {
  Micros at = 0;  // completion time, server clock domain
  TraceId trace_id;
  std::string name;     // what was slow ("login", "registration", ...)
  std::string outcome;  // "ok" | "timeout" | "declined" | ...
  Micros duration_us = 0;
  Micros threshold_us = 0;
  /// net.loop.dispatch_delay_us observed when the request was admitted —
  /// nonzero means the reactor was already behind before work started.
  std::int64_t loop_delay_us = 0;
  bool degraded = false;      // push->poll degrade hit this round
  bool breaker_open = false;  // rendezvous breaker open at completion
  /// Per-hop blame, self-time descending (trimmed to kMaxBlame).
  std::vector<CriticalPathEntry> blame;
};

class SlowLog {
 public:
  explicit SlowLog(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity ? capacity : 1) {}

  SlowLog(const SlowLog&) = delete;
  SlowLog& operator=(const SlowLog&) = delete;

  /// SLO threshold in microseconds; 0 disables recording.
  void set_threshold(Micros t) {
    threshold_us_.store(t < 0 ? 0 : t, std::memory_order_relaxed);
  }
  Micros threshold() const {
    return threshold_us_.load(std::memory_order_relaxed);
  }
  bool should_record(Micros duration_us) const {
    const Micros t = threshold();
    return t > 0 && duration_us > t;
  }

  /// Appends (drop-oldest past capacity); trims blame to kMaxBlame.
  void record(SlowLogEntry entry);

  std::vector<SlowLogEntry> snapshot() const;
  /// One JSON object per line, oldest first — the GET /slowlog body.
  /// `since` > 0 keeps only entries with at > since.
  std::string to_json_lines(Micros since = 0) const;
  void clear();
  std::uint64_t dropped() const;
  std::size_t capacity() const { return capacity_; }

  static constexpr std::size_t kDefaultCapacity = 256;
  static constexpr std::size_t kMaxBlame = 6;

 private:
  std::size_t capacity_;
  std::atomic<Micros> threshold_us_{0};
  mutable std::mutex mu_;
  std::deque<SlowLogEntry> ring_;
  std::uint64_t dropped_ = 0;
};

}  // namespace amnesia::obs
