// Clock abstraction.
//
// Protocol components never read wall time directly; they take a Clock so
// the same code runs under the discrete-event simulator (virtual time) and
// in real-time benchmarks. Times are microseconds since an arbitrary epoch.
#pragma once

#include <chrono>
#include <cstdint>

namespace amnesia {

using Micros = std::int64_t;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual Micros now_us() const = 0;
};

/// Real wall-clock time (steady).
class WallClock final : public Clock {
 public:
  Micros now_us() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

/// Manually advanced clock for unit tests.
class ManualClock final : public Clock {
 public:
  Micros now_us() const override { return now_; }
  void advance_us(Micros delta) { now_ += delta; }
  void set_us(Micros t) { now_ = t; }

 private:
  Micros now_ = 0;
};

constexpr Micros ms_to_us(double ms) {
  return static_cast<Micros>(ms * 1000.0);
}
constexpr double us_to_ms(Micros us) {
  return static_cast<double>(us) / 1000.0;
}

}  // namespace amnesia
