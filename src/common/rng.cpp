#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace amnesia {

std::uint64_t RandomSource::uniform(std::uint64_t bound) {
  if (bound == 0) throw Error("RandomSource::uniform: zero bound");
  // Rejection sampling: draw until the value falls inside the largest
  // multiple of `bound` representable in 64 bits, then reduce.
  const std::uint64_t limit = UINT64_MAX - (UINT64_MAX % bound);
  for (;;) {
    std::uint64_t v = next_u64();
    if (v < limit) return v % bound;
  }
}

double RandomSource::uniform01() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double RandomSource::gaussian(double mean, double stddev) {
  // Box-Muller transform; u1 is kept away from zero so log() is finite.
  double u1 = uniform01();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace amnesia
