// Byte-buffer utilities shared by every Amnesia module.
//
// All cryptographic and wire-format code in this repository operates on
// `Bytes` (a vector of octets). This header provides conversions between
// Bytes and the textual encodings the paper uses (hex for hashes and IDs,
// base64 for backup blobs), plus small helpers for concatenation and
// secure wiping of secret material.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace amnesia {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Builds a Bytes buffer from the raw characters of `s` (no re-encoding).
Bytes to_bytes(std::string_view s);

/// Interprets `b` as raw characters (no validation; may contain NULs).
std::string to_string(ByteView b);

/// Lowercase hex encoding, e.g. {0xff, 0x01} -> "ff01".
std::string hex_encode(ByteView b);

/// Decodes a hex string (upper or lower case). Throws FormatError on odd
/// length or non-hex characters.
Bytes hex_decode(std::string_view hex);

/// Standard base64 (RFC 4648, with padding).
std::string base64_encode(ByteView b);

/// Decodes standard base64. Throws FormatError on malformed input.
Bytes base64_decode(std::string_view b64);

/// Concatenates any number of byte views in order.
Bytes concat(std::initializer_list<ByteView> parts);

/// Appends `src` to `dst`.
void append(Bytes& dst, ByteView src);

/// Overwrites the buffer with zeros. Used for key material before release.
/// (Best effort: the compiler is prevented from eliding the store.)
void secure_wipe(Bytes& b);

/// Same, for raw memory (stack scratch, pads, midstates). `p` may be null
/// only when `n` is zero.
void secure_wipe(void* p, std::size_t n);

/// Constant-time equality for secret-dependent comparisons.
bool ct_equal(ByteView a, ByteView b);

}  // namespace amnesia
