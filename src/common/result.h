// Result<T>: value-or-error return type for expected protocol outcomes.
//
// The Amnesia protocols have many legitimate failure paths (bad master
// password, mismatched CAPTCHA, unknown account, declined confirmation).
// Those are not exceptional; they are part of the interface, so endpoints
// return Result<T> and callers must inspect it.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "common/error.h"

namespace amnesia {

/// Machine-readable failure categories shared across the system.
enum class Err {
  kAuthFailed,        // wrong master password / not logged in
  kThrottled,         // too many authentication attempts
  kNotFound,          // unknown user, account, table, registration id...
  kAlreadyExists,     // duplicate user/account
  kVerificationFailed,// CAPTCHA / Pid / integrity check mismatch
  kDeclined,          // user declined the confirmation on the phone
  kUnavailable,       // device offline / service unreachable / timeout
  kInvalidArgument,   // malformed request parameters
  kInternal,          // unexpected internal failure
};

/// Short stable name for an error code (used in wire responses and logs).
constexpr const char* err_name(Err e) {
  switch (e) {
    case Err::kAuthFailed: return "auth_failed";
    case Err::kThrottled: return "throttled";
    case Err::kNotFound: return "not_found";
    case Err::kAlreadyExists: return "already_exists";
    case Err::kVerificationFailed: return "verification_failed";
    case Err::kDeclined: return "declined";
    case Err::kUnavailable: return "unavailable";
    case Err::kInvalidArgument: return "invalid_argument";
    case Err::kInternal: return "internal";
  }
  return "unknown";
}

struct Failure {
  Err code;
  std::string message;
};

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Failure f) : failure_(std::move(f)) {}  // NOLINT: implicit by design
  Result(Err code, std::string message)
      : failure_(Failure{code, std::move(message)}) {}

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Returns the value; throws ProtocolError if this Result holds an error.
  const T& value() const& {
    require_ok();
    return *value_;
  }
  T& value() & {
    require_ok();
    return *value_;
  }
  T&& take() && {
    require_ok();
    return std::move(*value_);
  }

  const Failure& failure() const {
    if (ok()) throw ProtocolError("Result::failure() on ok result");
    return *failure_;
  }
  Err code() const { return failure().code; }
  const std::string& message() const { return failure().message; }

 private:
  void require_ok() const {
    if (!ok()) {
      throw ProtocolError("Result::value() on failed result: " +
                          failure_->message);
    }
  }

  std::optional<T> value_;
  std::optional<Failure> failure_;
};

/// Convenience alias for operations with no payload.
struct Unit {};
using Status = Result<Unit>;

inline Status ok_status() { return Status(Unit{}); }

}  // namespace amnesia
