// Minimal leveled logger.
//
// The default level is kWarn so that tests and benchmarks stay quiet;
// examples turn on kInfo to narrate protocol steps.
#pragma once

#include <sstream>
#include <string>

namespace amnesia {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one formatted line to stderr if `level` is enabled.
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

namespace detail {

class LogMessage {
 public:
  LogMessage(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogMessage() { log_line(level_, component_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace detail

#define AMNESIA_LOG(level, component) \
  ::amnesia::detail::LogMessage(level, component)
#define AMNESIA_DEBUG(component) AMNESIA_LOG(::amnesia::LogLevel::kDebug, component)
#define AMNESIA_INFO(component) AMNESIA_LOG(::amnesia::LogLevel::kInfo, component)
#define AMNESIA_WARN(component) AMNESIA_LOG(::amnesia::LogLevel::kWarn, component)
#define AMNESIA_ERROR(component) AMNESIA_LOG(::amnesia::LogLevel::kError, component)

}  // namespace amnesia
