// Exception hierarchy used throughout the Amnesia codebase.
//
// Exceptions are reserved for contract violations and environmental
// failures (malformed encodings, I/O errors, broken invariants). Expected
// protocol-level outcomes — wrong master password, rejected CAPTCHA, a
// declined confirmation — are modelled with Result<T> (see result.h), not
// exceptions, so callers are forced to handle them.
#pragma once

#include <stdexcept>
#include <string>

namespace amnesia {

/// Root of the project exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed textual or binary encodings (hex, base64, wire frames).
class FormatError : public Error {
 public:
  using Error::Error;
};

/// Violated preconditions inside cryptographic primitives.
class CryptoError : public Error {
 public:
  using Error::Error;
};

/// Storage-layer failures: unknown table, schema mismatch, corrupt journal.
class StorageError : public Error {
 public:
  using Error::Error;
};

/// Simulated-network misuse: unknown node, send while detached, etc.
class NetError : public Error {
 public:
  using Error::Error;
};

/// Protocol state-machine misuse (calling steps out of order).
class ProtocolError : public Error {
 public:
  using Error::Error;
};

}  // namespace amnesia
