#include "common/bytes.h"

#include <array>

#include "common/error.h"

namespace amnesia {

Bytes to_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string to_string(ByteView b) { return std::string(b.begin(), b.end()); }

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

constexpr char kB64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int b64_value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

}  // namespace

std::string hex_encode(ByteView b) {
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t byte : b) {
    out.push_back(kHexDigits[byte >> 4]);
    out.push_back(kHexDigits[byte & 0x0f]);
  }
  return out;
}

Bytes hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw FormatError("hex_decode: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_value(hex[i]);
    int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw FormatError("hex_decode: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string base64_encode(ByteView b) {
  std::string out;
  out.reserve(((b.size() + 2) / 3) * 4);
  std::size_t i = 0;
  while (i + 3 <= b.size()) {
    std::uint32_t n = (b[i] << 16) | (b[i + 1] << 8) | b[i + 2];
    out.push_back(kB64Alphabet[(n >> 18) & 63]);
    out.push_back(kB64Alphabet[(n >> 12) & 63]);
    out.push_back(kB64Alphabet[(n >> 6) & 63]);
    out.push_back(kB64Alphabet[n & 63]);
    i += 3;
  }
  std::size_t rem = b.size() - i;
  if (rem == 1) {
    std::uint32_t n = b[i] << 16;
    out.push_back(kB64Alphabet[(n >> 18) & 63]);
    out.push_back(kB64Alphabet[(n >> 12) & 63]);
    out.append("==");
  } else if (rem == 2) {
    std::uint32_t n = (b[i] << 16) | (b[i + 1] << 8);
    out.push_back(kB64Alphabet[(n >> 18) & 63]);
    out.push_back(kB64Alphabet[(n >> 12) & 63]);
    out.push_back(kB64Alphabet[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

Bytes base64_decode(std::string_view b64) {
  if (b64.size() % 4 != 0) {
    throw FormatError("base64_decode: length not a multiple of 4");
  }
  Bytes out;
  out.reserve(b64.size() / 4 * 3);
  for (std::size_t i = 0; i < b64.size(); i += 4) {
    std::array<int, 4> v{};
    int pad = 0;
    for (int j = 0; j < 4; ++j) {
      char c = b64[i + j];
      if (c == '=') {
        // Padding is only legal in the final two positions of the string.
        if (i + 4 != b64.size() || j < 2) {
          throw FormatError("base64_decode: misplaced padding");
        }
        ++pad;
        v[j] = 0;
      } else {
        if (pad > 0) throw FormatError("base64_decode: data after padding");
        v[j] = b64_value(c);
        if (v[j] < 0) throw FormatError("base64_decode: invalid character");
      }
    }
    std::uint32_t n = (v[0] << 18) | (v[1] << 12) | (v[2] << 6) | v[3];
    out.push_back(static_cast<std::uint8_t>((n >> 16) & 0xff));
    if (pad < 2) out.push_back(static_cast<std::uint8_t>((n >> 8) & 0xff));
    if (pad < 1) out.push_back(static_cast<std::uint8_t>(n & 0xff));
  }
  return out;
}

Bytes concat(std::initializer_list<ByteView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

void append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

void secure_wipe(Bytes& b) {
  secure_wipe(b.data(), b.size());
  b.clear();
}

void secure_wipe(void* p, std::size_t n) {
  volatile std::uint8_t* v = static_cast<std::uint8_t*>(p);
  for (std::size_t i = 0; i < n; ++i) v[i] = 0;
}

bool ct_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace amnesia
