// Random-source interface.
//
// All randomness in the system flows through RandomSource so that the
// discrete-event simulation and the protocol code can be made fully
// deterministic in tests and benchmarks. The cryptographic implementation
// (a ChaCha20-based DRBG) lives in src/crypto/drbg.h; this header only
// defines the interface plus distribution helpers built on it.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace amnesia {

class RandomSource {
 public:
  virtual ~RandomSource() = default;

  /// Fills `out` with random octets.
  virtual void fill(Bytes& out) = 0;

  /// Returns `n` random octets.
  Bytes bytes(std::size_t n) {
    Bytes b(n);
    fill(b);
    return b;
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    Bytes b = bytes(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | b[static_cast<std::size_t>(i)];
    return v;
  }

  /// Uniform integer in [0, bound) without modulo bias (rejection sampling).
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Normally distributed sample (Box-Muller over uniform01).
  double gaussian(double mean, double stddev);
};

}  // namespace amnesia
