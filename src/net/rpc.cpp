#include "net/rpc.h"

#include <utility>

#include "common/logging.h"
#include "obs/trace.h"
#include "resilience/retry.h"

namespace amnesia::net {
namespace {

// Frame kinds, byte-identical to simnet::Node's RPC framing.
constexpr std::uint8_t kRequest = 0;
constexpr std::uint8_t kResponse = 1;
// Traced variants: [trace_len:1][trace][body] after the correlation id.
constexpr std::uint8_t kTracedRequest = 2;
constexpr std::uint8_t kTracedResponse = 3;

constexpr std::size_t kRpcHeaderSize = 1 + 8;

std::uint64_t read_corr(ByteView frame) {
  std::uint64_t corr = 0;
  for (int i = 0; i < 8; ++i) {
    corr = (corr << 8) | frame[1 + static_cast<std::size_t>(i)];
  }
  return corr;
}

/// The ambient trace serialized for frame metadata; empty when inactive.
std::string ambient_trace_header() {
  const obs::TraceContext ctx = obs::current_trace();
  return ctx.valid() ? obs::format_trace_header(ctx) : std::string();
}

/// Splits a traced body into its trace prefix and inner body. Returns
/// false on torn metadata (the frame is hostile or corrupt).
bool split_traced_body(ByteView body, std::string& trace, ByteView& inner) {
  if (body.empty()) return false;
  const std::size_t trace_len = body[0];
  if (body.size() < 1 + trace_len) return false;
  trace.assign(body.begin() + 1,
               body.begin() + 1 + static_cast<std::ptrdiff_t>(trace_len));
  inner = body.subspan(1 + trace_len);
  return true;
}

}  // namespace

// ---- RpcPeer -----------------------------------------------------------

std::shared_ptr<RpcPeer> RpcPeer::attach(StreamPtr stream, Executor& executor) {
  auto peer = std::shared_ptr<RpcPeer>(new RpcPeer(std::move(stream), executor));
  std::weak_ptr<RpcPeer> weak = peer;
  ByteStream::Handlers handlers;
  handlers.on_data = [weak](ByteView chunk) {
    if (auto self = weak.lock()) self->on_data(chunk);
  };
  handlers.on_close = [weak]() {
    if (auto self = weak.lock()) self->on_stream_close();
  };
  peer->stream_->set_handlers(std::move(handlers));
  return peer;
}

bool RpcPeer::send_frame(std::uint8_t kind, std::uint64_t corr, ByteView body) {
  frame_scratch_.clear();
  const std::uint32_t len =
      static_cast<std::uint32_t>(kRpcHeaderSize + body.size());
  frame_scratch_.reserve(4 + len);
  frame_scratch_.push_back(static_cast<std::uint8_t>(len));
  frame_scratch_.push_back(static_cast<std::uint8_t>(len >> 8));
  frame_scratch_.push_back(static_cast<std::uint8_t>(len >> 16));
  frame_scratch_.push_back(static_cast<std::uint8_t>(len >> 24));
  frame_scratch_.push_back(kind);
  for (int i = 7; i >= 0; --i) {
    frame_scratch_.push_back(static_cast<std::uint8_t>(corr >> (8 * i)));
  }
  append(frame_scratch_, body);
  return stream_->send(frame_scratch_);
}

bool RpcPeer::send_traced_frame(std::uint8_t kind, std::uint64_t corr,
                                const std::string& trace, ByteView body) {
  Bytes traced;
  traced.reserve(1 + trace.size() + body.size());
  traced.push_back(static_cast<std::uint8_t>(trace.size()));
  for (const char c : trace) {
    traced.push_back(static_cast<std::uint8_t>(c));
  }
  append(traced, body);
  return send_frame(kind, corr, traced);
}

void RpcPeer::request(Bytes body, ResponseHandler cb, Micros timeout_us,
                      std::string trace) {
  if (closed_) {
    cb(Result<Bytes>(Err::kUnavailable, "rpc peer closed"));
    return;
  }
  if (trace.empty()) trace = ambient_trace_header();
  if (trace.size() > 255) trace.clear();  // cannot fit the u8 length prefix
  const std::uint64_t corr = next_corr_++;
  pending_[corr] = std::move(cb);
  const bool sent =
      trace.empty() ? send_frame(kRequest, corr, body)
                    : send_traced_frame(kTracedRequest, corr, trace, body);
  if (!sent) {
    // Backpressure overflow closed the stream; on_stream_close has already
    // failed every pending request (including this one).
    return;
  }
  std::weak_ptr<RpcPeer> weak = weak_from_this();
  executor_.run_after(timeout_us, [weak, corr]() {
    auto self = weak.lock();
    if (!self) return;
    auto it = self->pending_.find(corr);
    if (it == self->pending_.end()) return;
    ResponseHandler cb = std::move(it->second);
    self->pending_.erase(it);
    cb(Result<Bytes>(Err::kUnavailable, "rpc timeout"));
  });
}

void RpcPeer::on_data(ByteView chunk) {
  auto self = shared_from_this();  // keep alive across sink callbacks
  if (!decoder_.feed(chunk, [this](ByteView frame) { on_frame(frame); })) {
    AMNESIA_ERROR("net.rpc") << decoder_.error() << "; closing stream";
    close();
  }
}

void RpcPeer::on_frame(ByteView frame) {
  if (frame.size() < kRpcHeaderSize) {
    AMNESIA_ERROR("net.rpc") << "runt frame (" << frame.size()
                             << " bytes); closing stream";
    close();
    return;
  }
  const std::uint8_t kind = frame[0];
  const std::uint64_t corr = read_corr(frame);
  Bytes body(frame.begin() + kRpcHeaderSize, frame.end());

  if (kind == kResponse || kind == kTracedResponse) {
    if (kind == kTracedResponse) {
      std::string trace;
      ByteView inner;
      if (!split_traced_body(body, trace, inner)) {
        AMNESIA_ERROR("net.rpc") << "torn traced response; closing stream";
        close();
        return;
      }
      body.assign(inner.begin(), inner.end());
    }
    auto it = pending_.find(corr);
    if (it == pending_.end()) return;  // late response after timeout
    ResponseHandler cb = std::move(it->second);
    pending_.erase(it);
    cb(Result<Bytes>(std::move(body)));
    return;
  }
  if (kind == kRequest || kind == kTracedRequest) {
    // Traced requests carry context as frame metadata: an unparseable
    // context is dropped (fresh roots downstream, nothing echoed), but a
    // torn length prefix means the stream itself is corrupt.
    obs::TraceContext remote;
    std::string canonical_trace;
    if (kind == kTracedRequest) {
      std::string trace;
      ByteView inner;
      if (!split_traced_body(body, trace, inner)) {
        AMNESIA_ERROR("net.rpc") << "torn traced request; closing stream";
        close();
        return;
      }
      if (const auto parsed = obs::parse_trace_header(trace)) {
        remote = *parsed;
        canonical_trace = obs::format_trace_header(remote);
      }
      body.assign(inner.begin(), inner.end());
    }
    if (!handler_) {
      AMNESIA_ERROR("net.rpc") << "request with no handler installed; dropping";
      return;
    }
    std::weak_ptr<RpcPeer> weak = weak_from_this();
    auto respond = [weak, corr, canonical_trace](Bytes response) {
      auto self = weak.lock();
      if (!self || self->closed_) return;  // connection died while serving
      if (canonical_trace.empty()) {
        self->send_frame(kResponse, corr, response);
      } else {
        self->send_traced_frame(kTracedResponse, corr, canonical_trace,
                                response);
      }
    };
    const obs::ScopedTrace scope(remote);
    handler_(body, std::move(respond));
    return;
  }
  AMNESIA_ERROR("net.rpc") << "unknown frame kind " << static_cast<int>(kind)
                           << "; closing stream";
  close();
}

void RpcPeer::fail_pending(const std::string& reason) {
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [corr, cb] : pending) {
    cb(Result<Bytes>(Err::kUnavailable, reason));
  }
}

void RpcPeer::on_stream_close() {
  if (closed_) return;
  closed_ = true;
  fail_pending("connection closed");
  if (on_close_) {
    auto fn = std::move(on_close_);
    on_close_ = nullptr;
    fn();
  }
}

void RpcPeer::close() {
  if (closed_) return;
  closed_ = true;
  fail_pending("rpc peer closed");
  stream_->close();
  if (on_close_) {
    auto fn = std::move(on_close_);
    on_close_ = nullptr;
    fn();
  }
}

// ---- RpcClient ---------------------------------------------------------

RpcClient::RpcClient(Transport& transport, Micros timeout_us)
    : transport_(transport), timeout_us_(timeout_us) {}

RpcClient::~RpcClient() { close(); }

void RpcClient::request(Bytes body, ResponseHandler cb) {
  // Capture the ambient trace here: retry attempts and the lazy-connect
  // queue both run from executor callbacks with no ambient context.
  std::string trace = ambient_trace_header();
  if (!retry_) {
    request_once(std::move(body), std::move(cb), timeout_us_,
                 std::move(trace));
    return;
  }
  resilience::RetryOptions opts;
  opts.backoff = retry_->backoff;
  // Distinct deterministic jitter stream per logical call.
  opts.seed = retry_->seed + ++retry_calls_;
  if (retry_->deadline_us > 0) {
    opts.deadline = resilience::Deadline::after(transport_.executor().clock(),
                                                retry_->deadline_us);
  }
  opts.breaker = retry_->breaker;
  opts.budget = retry_->budget;
  opts.metrics = retry_->metrics;
  opts.op_name = "rpc";
  resilience::retry_async<Bytes>(
      transport_.executor(), std::move(opts),
      [this, body = std::move(body), trace = std::move(trace)](
          int /*attempt*/, resilience::Deadline deadline,
          std::function<void(Result<Bytes>)> done) {
        const Micros now = transport_.executor().clock().now_us();
        request_once(body, std::move(done), deadline.clamp(timeout_us_, now),
                     trace);
      },
      std::move(cb));
}

void RpcClient::request_once(Bytes body, ResponseHandler cb, Micros timeout_us,
                             std::string trace) {
  if (peer_ && !peer_->closed()) {
    peer_->request(std::move(body), std::move(cb), timeout_us,
                   std::move(trace));
    return;
  }
  waiting_.emplace_back(std::move(body), std::move(cb), timeout_us,
                        std::move(trace));
  if (!connecting_) start_connect();
}

std::function<void(Bytes, ResponseHandler)> RpcClient::wire() {
  return [this](Bytes body, ResponseHandler cb) {
    request(std::move(body), std::move(cb));
  };
}

void RpcClient::start_connect() {
  connecting_ = true;
  transport_.connect([this](Result<StreamPtr> stream) {
    connecting_ = false;
    if (!stream.ok()) {
      auto waiting = std::move(waiting_);
      waiting_.clear();
      const Failure& f = stream.failure();
      for (auto& [body, cb, timeout, trace] : waiting) {
        cb(Result<Bytes>(f.code, f.message));
      }
      return;
    }
    peer_ = RpcPeer::attach(std::move(stream).take(), transport_.executor());
    flush_waiting();
  });
}

void RpcClient::flush_waiting() {
  auto waiting = std::move(waiting_);
  waiting_.clear();
  for (auto& [body, cb, timeout, trace] : waiting) {
    peer_->request(std::move(body), std::move(cb), timeout, std::move(trace));
  }
}

void RpcClient::close() {
  if (peer_) {
    peer_->set_on_close(nullptr);
    peer_->close();
    peer_.reset();
  }
  auto waiting = std::move(waiting_);
  waiting_.clear();
  for (auto& [body, cb, timeout, trace] : waiting) {
    cb(Result<Bytes>(Err::kUnavailable, "rpc client closed"));
  }
}

}  // namespace amnesia::net
