#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "common/logging.h"

namespace amnesia::net {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw NetError(std::string("epoll_create1: ") + std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw NetError(std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    throw NetError(std::string("epoll_ctl(wakeup): ") + std::strerror(errno));
  }
  last_tick_ = static_cast<std::uint64_t>(clock_.now_us()) >> kTickShift;
}

EventLoop::~EventLoop() {
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void EventLoop::set_metrics(obs::MetricsRegistry* registry) {
  if (!registry) {
    wakeups_ = nullptr;
    timers_fired_ = nullptr;
    eventfd_wakeups_ = nullptr;
    post_depth_ = nullptr;
    post_depth_max_ = nullptr;
    dispatch_delay_ = nullptr;
    callback_us_ = nullptr;
    wake_dispatch_us_ = nullptr;
    timer_slip_us_ = nullptr;
    return;
  }
  wakeups_ = &registry->counter("net.epoll_wakeups");
  timers_fired_ = &registry->counter("net.timers_fired");
  eventfd_wakeups_ = &registry->counter("net.loop.eventfd_wakeups");
  post_depth_ = &registry->gauge("net.loop.post_depth");
  post_depth_max_ = &registry->gauge("net.loop.post_depth_max");
  dispatch_delay_ = &registry->gauge("net.loop.dispatch_delay_us");
  // Loop intervals live far below the default bounds' 100 us floor.
  callback_us_ = &registry->histogram("net.loop.callback_us",
                                      obs::fine_latency_bounds());
  wake_dispatch_us_ = &registry->histogram("net.loop.wake_dispatch_us",
                                           obs::fine_latency_bounds());
  timer_slip_us_ = &registry->histogram("net.loop.timer_slip_us",
                                        obs::fine_latency_bounds());
}

// ---- fds ---------------------------------------------------------------

void EventLoop::add_fd(int fd, std::uint32_t events, IoHandler handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw NetError(std::string("epoll_ctl(add): ") + std::strerror(errno));
  }
  fds_[fd] = std::make_shared<FdEntry>(FdEntry{std::move(handler)});
}

void EventLoop::mod_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    throw NetError(std::string("epoll_ctl(mod): ") + std::strerror(errno));
  }
}

void EventLoop::del_fd(int fd) {
  // Best effort: the fd may already be closed (EBADF) on teardown paths.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  fds_.erase(fd);
}

// ---- timers ------------------------------------------------------------

EventLoop::TimerId EventLoop::add_timer(Micros delay_us,
                                        std::function<void()> fn) {
  if (delay_us < 0) delay_us = 0;
  const Micros deadline = clock_.now_us() + delay_us;
  const TimerId id = next_timer_id_++;
  wheel_[slot_of(deadline)].push_back(Timer{id, deadline, std::move(fn)});
  live_timers_.insert(id);
  if (nearest_deadline_ < 0 || deadline < nearest_deadline_) {
    nearest_deadline_ = deadline;
  }
  return id;
}

bool EventLoop::cancel_timer(TimerId id) {
  if (live_timers_.erase(id) == 0) return false;
  // The wheel entry stays put; it is discarded when its slot is visited.
  cancelled_timers_.insert(id);
  return true;
}

void EventLoop::recompute_nearest() {
  nearest_deadline_ = -1;
  if (live_timers_.empty()) return;
  for (const auto& slot : wheel_) {
    for (const Timer& t : slot) {
      if (cancelled_timers_.contains(t.id)) continue;
      if (nearest_deadline_ < 0 || t.deadline < nearest_deadline_) {
        nearest_deadline_ = t.deadline;
      }
    }
  }
}

std::size_t EventLoop::process_timers() {
  const Micros now = clock_.now_us();
  const std::uint64_t now_tick = static_cast<std::uint64_t>(now) >> kTickShift;
  if (live_timers_.empty() && cancelled_timers_.empty()) {
    last_tick_ = now_tick;
    return 0;
  }
  // Visit every slot the clock has crossed since the last pass, plus the
  // current slot (so sub-tick delays fire as soon as now >= deadline). One
  // full rotation covers the whole wheel.
  std::uint64_t span = now_tick - last_tick_ + 1;
  if (span > kWheelSlots) span = kWheelSlots;

  std::size_t fired = 0;
  std::vector<Timer> due;
  for (std::uint64_t i = 0; i < span; ++i) {
    const std::uint64_t tick = now_tick - (span - 1) + i;
    auto& slot = wheel_[tick & (kWheelSlots - 1)];
    for (std::size_t j = 0; j < slot.size();) {
      Timer& t = slot[j];
      if (cancelled_timers_.erase(t.id) > 0) {
        slot.erase(slot.begin() + static_cast<std::ptrdiff_t>(j));
        continue;
      }
      if (t.deadline <= now) {
        live_timers_.erase(t.id);
        due.push_back(std::move(t));
        slot.erase(slot.begin() + static_cast<std::ptrdiff_t>(j));
        continue;
      }
      ++j;  // a later rotation's timer
    }
  }
  last_tick_ = now_tick;
  if (!due.empty() || (nearest_deadline_ >= 0 && nearest_deadline_ <= now)) {
    recompute_nearest();
  }
  for (Timer& t : due) {
    ++fired;
    if (timers_fired_) timers_fired_->inc();
    if (timer_slip_us_) {
      timer_slip_us_->record(now > t.deadline ? now - t.deadline : 0);
      const Micros t0 = clock_.now_us();
      t.fn();
      callback_us_->record(clock_.now_us() - t0);
    } else {
      t.fn();
    }
  }
  return fired;
}

// ---- posting -----------------------------------------------------------

void EventLoop::post(std::function<void()> fn) {
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
    depth = posted_.size();
  }
  // Queue-depth visibility for cross-thread mailbox pressure: the gauge
  // tracks the depth after the latest post, the _max gauge the worst
  // backlog since reset. Written outside the lock — last writer wins is
  // exactly a gauge's semantics.
  if (post_depth_) {
    post_depth_->set(static_cast<std::int64_t>(depth));
    post_depth_max_->track_max(static_cast<std::int64_t>(depth));
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::run_after(Micros delay_us, std::function<void()> fn) {
  add_timer(delay_us, std::move(fn));
}

std::size_t EventLoop::drain_posted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posted_);
  }
  if (post_depth_ && !batch.empty()) post_depth_->set(0);
  for (auto& fn : batch) {
    if (callback_us_) {
      const Micros t0 = clock_.now_us();
      fn();
      callback_us_->record(clock_.now_us() - t0);
    } else {
      fn();
    }
  }
  return batch.size();
}

// ---- loop --------------------------------------------------------------

Micros EventLoop::wait_budget(Micros max_wait_us) const {
  Micros budget = max_wait_us < 0 ? 0 : max_wait_us;
  if (nearest_deadline_ >= 0) {
    const Micros until = nearest_deadline_ - clock_.now_us();
    if (until < budget) budget = until < 0 ? 0 : until;
  }
  {
    // Pending posted work means no sleeping at all.
    std::lock_guard<std::mutex> lock(post_mu_);
    if (!posted_.empty()) budget = 0;
  }
  return budget;
}

std::size_t EventLoop::poll(Micros max_wait_us) {
  const Micros budget = wait_budget(max_wait_us);
  // Round up so a timer due in 200 us is not spun on with timeout 0.
  const int timeout_ms =
      budget <= 0 ? 0 : static_cast<int>((budget + 999) / 1000);

  epoll_event events[64];
  const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  if (wakeups_) wakeups_->inc();
  std::size_t dispatched = 0;
  if (n > 0) {
    // One timestamp for the whole batch: wake_dispatch measures how long
    // each handler waited behind its batch-mates (head-of-line blocking),
    // so it is the gap from epoll return to this handler's start.
    const Micros woke_at = callback_us_ ? clock_.now_us() : 0;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        if (eventfd_wakeups_) eventfd_wakeups_->inc();
        std::uint64_t drain = 0;
        [[maybe_unused]] ssize_t r = ::read(wake_fd_, &drain, sizeof(drain));
        continue;
      }
      // Look the entry up per event: an earlier handler in this batch may
      // have del_fd()'d this fd.
      const auto it = fds_.find(fd);
      if (it == fds_.end()) continue;
      const std::shared_ptr<FdEntry> entry = it->second;
      if (callback_us_) {
        const Micros t0 = clock_.now_us();
        wake_dispatch_us_->record(t0 - woke_at);
        dispatch_delay_->set(t0 - woke_at);
        entry->handler(events[i].events);
        callback_us_->record(clock_.now_us() - t0);
      } else {
        entry->handler(events[i].events);
      }
      ++dispatched;
    }
  } else if (n < 0 && errno != EINTR) {
    throw NetError(std::string("epoll_wait: ") + std::strerror(errno));
  }
  dispatched += drain_posted();
  dispatched += process_timers();
  return dispatched;
}

void EventLoop::run() {
  stop_.store(false, std::memory_order_relaxed);
  while (!stop_.load(std::memory_order_relaxed)) {
    poll(1'000'000);
  }
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_relaxed);
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

}  // namespace amnesia::net
