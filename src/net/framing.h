// Length-prefixed message framing over a ByteStream.
//
// A ByteStream delivers chunks with arbitrary boundaries; this layer
// restores message boundaries with a [u32 length (LE)][payload] envelope.
// It is the stream-framing substrate for the secure channel: one frame
// carries exactly the bytes that a simnet RPC body would carry, so the
// protocol bytes above this layer are identical across backends.
//
// FrameDecoder is allocation-conscious: its internal buffer grows to the
// high-water mark once and is then reused, so reassembling a steady
// stream of same-sized records performs zero heap allocations (enforced
// by tests/securechan_stream_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/bytes.h"

namespace amnesia::net {

/// Frames larger than this are treated as stream corruption.
constexpr std::size_t kDefaultMaxFrame = 1u << 20;

/// Appends [u32 len][payload] to `out` (capacity-reusing hot path).
void append_frame(Bytes& out, ByteView payload);

Bytes encode_frame(ByteView payload);

class FrameDecoder {
 public:
  /// Receives each complete frame payload; the view is valid only during
  /// the call and the sink must not call feed() reentrantly.
  using Sink = std::function<void(ByteView)>;

  explicit FrameDecoder(std::size_t max_frame = kDefaultMaxFrame)
      : max_frame_(max_frame) {}

  /// Buffers `chunk` and emits every frame completed by it, in order.
  /// Returns false (and poisons the decoder) if a frame length exceeds
  /// max_frame — the caller should close the stream.
  bool feed(ByteView chunk, const Sink& sink);

  bool poisoned() const { return poisoned_; }
  /// Bytes buffered waiting for the rest of a frame.
  std::size_t buffered() const { return buf_.size(); }
  const std::string& error() const { return error_; }

 private:
  Bytes buf_;
  std::size_t max_frame_;
  bool poisoned_ = false;
  std::string error_;
};

}  // namespace amnesia::net
