// Executor: the deferred-execution surface shared by the real event loop
// and the discrete-event simulator.
//
// Protocol components (the HTTP server's worker-pool model, RPC timeouts,
// idle-timeout bookkeeping) never talk to epoll or to the simulation
// directly; they take an Executor. Under simnet the executor is the
// Simulation itself (virtual time), under src/net it is the EventLoop
// (real monotonic time) — the same protocol code runs unchanged over
// either backend, which is the point of the Transport abstraction
// (docs/NETWORKING.md).
#pragma once

#include <functional>

#include "common/clock.h"

namespace amnesia::net {

class Executor {
 public:
  virtual ~Executor() = default;

  /// Runs `fn` from the executor's dispatch context as soon as possible.
  /// EventLoop::post is safe from any thread (it kicks the wakeup fd);
  /// the Simulation implementation must be called from the thread that
  /// drives the simulation.
  virtual void post(std::function<void()> fn) = 0;

  /// Runs `fn` once, `delay_us` microseconds from now (clamped to >= 0).
  /// One-shot and non-cancellable; components that need cancellation keep
  /// their own generation counters or check state when the timer fires.
  virtual void run_after(Micros delay_us, std::function<void()> fn) = 0;

  /// The time base `run_after` delays against: virtual time under the
  /// simulator, CLOCK_MONOTONIC-style wall time under the event loop.
  virtual Clock& clock() = 0;
};

}  // namespace amnesia::net
