// ReactorPool: N EventLoops, each pinned to its own thread.
//
// The sharded server runs one reactor per shard; everything a shard owns
// (acceptor, connections, gateway, server state, storage) lives on that
// shard's loop thread and is only ever touched from it. The pool owns the
// loops and their threads: start() spins the threads up, stop_join() makes
// every run() return and joins. Work is handed to a shard with
// loop(i).post(...) — the eventfd wakeup channel — or, for setup/teardown
// that must complete before the caller proceeds, run_on_sync().
//
// The loops are constructed eagerly (before start()) so callers can wire
// objects to them from the owning thread via run_on_sync even while other
// shards are already serving.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.h"

namespace amnesia::net {

class ReactorPool {
 public:
  explicit ReactorPool(std::size_t n);
  ~ReactorPool();

  ReactorPool(const ReactorPool&) = delete;
  ReactorPool& operator=(const ReactorPool&) = delete;

  std::size_t size() const { return loops_.size(); }
  EventLoop& loop(std::size_t i) { return *loops_[i]; }

  /// The profiler thread name of loop `i`'s thread ("reactor-<i>") —
  /// the key a per-shard GET /profile scrape filters on.
  static std::string thread_name(std::size_t i) {
    return "reactor-" + std::to_string(i);
  }

  /// Launches one thread per loop, each running EventLoop::run().
  void start();
  /// Stops every loop and joins its thread. Idempotent; also called by
  /// the destructor. Posted-but-undrained work is dropped with the loop.
  void stop_join();
  bool running() const { return running_; }

  /// Posts `fn` to loop `i` and blocks until it has run there. Must not
  /// be called from a pool thread (it would deadlock waiting on itself);
  /// intended for construction/teardown choreography from the owner
  /// thread. Exceptions thrown by `fn` propagate back to the caller.
  void run_on_sync(std::size_t i, const std::function<void()>& fn);

 private:
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::thread> threads_;
  bool running_ = false;
};

}  // namespace amnesia::net
