#include "net/reactor_pool.h"

#include <exception>
#include <string>

#include "common/error.h"
#include "obs/profiler.h"

namespace amnesia::net {

ReactorPool::ReactorPool(std::size_t n) {
  if (n == 0) throw Error("ReactorPool: needs at least one loop");
  loops_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
  }
}

ReactorPool::~ReactorPool() { stop_join(); }

void ReactorPool::start() {
  if (running_) return;
  running_ = true;
  threads_.reserve(loops_.size());
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    // Each reactor thread registers with the sampling profiler under its
    // shard name, so a per-shard GET /profile can filter the process-wide
    // sample stream down to this shard's thread.
    threads_.emplace_back([raw = loops_[i].get(), name = thread_name(i)] {
      obs::Profiler::instance().register_thread(name);
      raw->run();
      obs::Profiler::instance().unregister_thread();
    });
  }
}

void ReactorPool::stop_join() {
  if (!running_) return;
  for (auto& loop : loops_) loop->stop();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  running_ = false;
}

void ReactorPool::run_on_sync(std::size_t i, const std::function<void()>& fn) {
  if (!running_) {
    // No thread is driving the loop yet (or anymore): run inline. Setup
    // before start() and teardown after stop_join() both land here, and
    // "loop thread" is then simply the calling thread.
    fn();
    return;
  }
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
  loops_[i]->post([&] {
    try {
      fn();
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  if (error) std::rethrow_exception(error);
}

}  // namespace amnesia::net
