// Request/response RPC over a ByteStream.
//
// Frame payloads deliberately mirror simnet::Node's wire framing —
// [kind:1][corr_id:8 big-endian][body] — so a framed stream is a drop-in
// replacement for a Node RPC pipe: the body bytes (securechan envelopes,
// serialized HTTP) are identical over either backend. Correlation ids let
// one connection carry pipelined requests whose responses complete out of
// order (the Amnesia server answers a password request only after the
// phone round-trip, while later requests on the same connection finish
// immediately).
//
// Traced variants (kinds 2/3) carry a serialized obs::TraceContext as
// frame metadata between corr_id and body —
// [kind:1][corr_id:8][trace_len:1][trace][body] — used automatically when
// the sender has an ambient trace; untraced peers keep the legacy kinds.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>

#include "common/bytes.h"
#include "common/result.h"
#include "net/framing.h"
#include "net/transport.h"
#include "resilience/policy.h"

namespace amnesia::obs {
class MetricsRegistry;
}

namespace amnesia::net {

using ResponseHandler = std::function<void(Result<Bytes>)>;

constexpr Micros kDefaultRpcTimeoutUs = 10'000'000;  // 10 s, as simnet::Node

/// One framed RPC endpoint bound to a stream. Symmetric: it can issue
/// requests and serve them (the gateway uses handler mode; RpcClient uses
/// request mode). Owners hold the shared_ptr; stream callbacks hold weak
/// references, so dropping the owner tears the peer down.
class RpcPeer : public std::enable_shared_from_this<RpcPeer> {
 public:
  /// Server-side handler; `respond` may be stored and called later (at
  /// most once), exactly like simnet::Node::RpcHandler.
  using Handler =
      std::function<void(const Bytes& body, std::function<void(Bytes)> respond)>;

  static std::shared_ptr<RpcPeer> attach(StreamPtr stream, Executor& executor);

  ~RpcPeer() = default;

  void set_handler(Handler handler) { handler_ = std::move(handler); }
  /// Invoked when the underlying stream closes (peer FIN, error, idle
  /// timeout). Pending requests have already been failed at this point.
  void set_on_close(std::function<void()> fn) { on_close_ = std::move(fn); }

  /// Issues one request; `cb` gets the response body, or kUnavailable on
  /// timeout / close. `trace` is a serialized obs::TraceContext rides in
  /// the frame metadata (empty = capture the ambient context, which is
  /// also the default when no trace is active: the frame then stays in
  /// the untraced legacy format).
  void request(Bytes body, ResponseHandler cb,
               Micros timeout_us = kDefaultRpcTimeoutUs,
               std::string trace = {});

  /// Closes the stream and fails all pending requests.
  void close();
  bool closed() const { return closed_; }
  ByteStream& stream() { return *stream_; }

 private:
  RpcPeer(StreamPtr stream, Executor& executor)
      : stream_(std::move(stream)), executor_(executor) {}

  void on_data(ByteView chunk);
  void on_frame(ByteView frame);
  void on_stream_close();
  void fail_pending(const std::string& reason);
  bool send_frame(std::uint8_t kind, std::uint64_t corr, ByteView body);
  bool send_traced_frame(std::uint8_t kind, std::uint64_t corr,
                         const std::string& trace, ByteView body);

  StreamPtr stream_;
  Executor& executor_;
  FrameDecoder decoder_;
  Handler handler_;
  std::function<void()> on_close_;
  std::map<std::uint64_t, ResponseHandler> pending_;
  std::uint64_t next_corr_ = 1;
  bool closed_ = false;
  Bytes frame_scratch_;  // reused per outbound frame
};

/// Per-client retry policy for RpcClient (opt-in; off by default so
/// non-idempotent callers are never surprised). Retries fire only on
/// kUnavailable failures — timeouts, refused/closed connections.
struct RpcRetryConfig {
  resilience::BackoffConfig backoff{};
  std::uint64_t seed = 0;
  /// Optional shared breaker (caller-owned, must outlive the client).
  resilience::CircuitBreaker* breaker = nullptr;
  /// Optional shared retry budget (caller-owned).
  resilience::RetryBudget* budget = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Per-request deadline budget; each attempt's RPC timeout is clamped
  /// to what remains. 0 = no overall deadline (per-attempt timeout only).
  Micros deadline_us = 0;
};

/// Client convenience: lazily connects a Transport, then behaves like a
/// Node::request pipe. Requests issued before the connection completes are
/// queued and flushed, mirroring SecureClient's pre-handshake queue.
class RpcClient {
 public:
  explicit RpcClient(Transport& transport,
                     Micros timeout_us = kDefaultRpcTimeoutUs);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  void request(Bytes body, ResponseHandler cb);

  /// Enables retries for subsequent request() calls. The underlying
  /// reconnect-on-demand path makes a retry after a connection failure
  /// dial fresh.
  void set_retry(RpcRetryConfig config) { retry_ = std::move(config); }

  /// Adapter with the shape securechan::SecureClient and
  /// websvc::ByteTransport expect. The RpcClient must outlive the
  /// returned function.
  std::function<void(Bytes, ResponseHandler)> wire();

  bool connected() const { return peer_ != nullptr && !peer_->closed(); }
  void close();
  RpcPeer* peer() { return peer_.get(); }

 private:
  void start_connect();
  void flush_waiting();
  /// One attempt: the pre-retry request() body.
  void request_once(Bytes body, ResponseHandler cb, Micros timeout_us,
                    std::string trace);

  Transport& transport_;
  Micros timeout_us_;
  std::shared_ptr<RpcPeer> peer_;
  bool connecting_ = false;
  /// body, callback, timeout, serialized trace context (captured when the
  /// caller issued the request — the ambient context is gone by the time
  /// the connect callback flushes the queue).
  std::deque<std::tuple<Bytes, ResponseHandler, Micros, std::string>> waiting_;
  std::optional<RpcRetryConfig> retry_;
  std::uint64_t retry_calls_ = 0;  // per-call jitter stream derivation
};

}  // namespace amnesia::net
