#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "common/logging.h"
#include "resilience/fault.h"

namespace amnesia::net {
namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

// EINTR gets a bounded retry everywhere (a signal storm must not spin a
// syscall loop forever); past the bound it is treated like any other
// fatal errno.
constexpr int kMaxEintrRetries = 64;

// Injected faults for the raw socket syscalls. kError substitutes an
// errno (EINTR included, which is how the bounded-retry paths are
// tested); kDrop pretends a read found nothing / a write succeeded while
// discarding the bytes; kCrash forces a connection-fatal errno.
ssize_t checked_read(int fd, void* buf, std::size_t len) {
  if (auto f = resilience::fault_check("net.tcp.read")) {
    switch (f->kind) {
      case resilience::FaultKind::kError:
        errno = f->err_no;
        return -1;
      case resilience::FaultKind::kDrop:
        errno = EAGAIN;
        return -1;
      case resilience::FaultKind::kCrash:
      case resilience::FaultKind::kShortWrite:
        errno = ECONNRESET;
        return -1;
    }
  }
  return ::read(fd, buf, len);
}

ssize_t checked_send(int fd, const void* buf, std::size_t len) {
  if (auto f = resilience::fault_check("net.tcp.write")) {
    switch (f->kind) {
      case resilience::FaultKind::kError:
        errno = f->err_no;
        return -1;
      case resilience::FaultKind::kShortWrite:
        if (f->limit < len) len = f->limit;
        break;  // genuine partial write
      case resilience::FaultKind::kDrop:
        return static_cast<ssize_t>(len);  // bytes vanish on the wire
      case resilience::FaultKind::kCrash:
        errno = EPIPE;
        return -1;
    }
  }
  return ::send(fd, buf, len, MSG_NOSIGNAL);
}

int checked_connect(int fd, const sockaddr* addr, socklen_t len) {
  if (auto f = resilience::fault_check("net.tcp.connect")) {
    switch (f->kind) {
      case resilience::FaultKind::kError:
        errno = f->err_no;
        return -1;
      case resilience::FaultKind::kDrop:
      case resilience::FaultKind::kCrash:
      case resilience::FaultKind::kShortWrite:
        errno = ECONNREFUSED;
        return -1;
    }
  }
  return ::connect(fd, addr, len);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw NetError(std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno));
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

std::string addr_to_string(const sockaddr_in& addr) {
  char buf[INET_ADDRSTRLEN] = {};
  ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf));
  return std::string(buf) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

// ---- TcpConnection -----------------------------------------------------

TcpConnection::TcpConnection(EventLoop& loop, int fd, std::string peer,
                             TcpMetrics* metrics, std::size_t max_write_queue)
    : loop_(loop),
      fd_(fd),
      peer_(std::move(peer)),
      metrics_(metrics),
      max_write_queue_(max_write_queue) {
  last_activity_us_ = loop_.clock().now_us();
}

TcpConnection::~TcpConnection() {
  if (fd_ >= 0) {
    loop_.del_fd(fd_);
    ::close(fd_);
    fd_ = -1;
    if (metrics_ && metrics_->connections_active) {
      metrics_->connections_active->add(-1);
    }
  }
}

void TcpConnection::start() {
  // The epoll handler keeps the connection alive while registered; the
  // weak_ptr breaks the cycle once teardown() unregisters the fd.
  std::weak_ptr<TcpConnection> weak = weak_from_this();
  loop_.add_fd(fd_, EPOLLIN, [weak](std::uint32_t events) {
    if (auto self = weak.lock()) self->on_events(events);
  });
}

void TcpConnection::set_handlers(Handlers handlers) {
  handlers_ = std::move(handlers);
}

void TcpConnection::on_events(std::uint32_t events) {
  auto self = shared_from_this();  // survive handler-triggered teardown
  if (events & (EPOLLERR | EPOLLHUP)) {
    teardown(true);
    return;
  }
  if (events & EPOLLIN) {
    handle_readable();
    if (fd_ < 0) return;
  }
  if (events & EPOLLOUT) {
    handle_writable();
  }
}

void TcpConnection::handle_readable() {
  std::uint8_t buf[kReadChunk];
  int eintr_retries = 0;
  while (fd_ >= 0) {
    const ssize_t n = checked_read(fd_, buf, sizeof(buf));
    if (n > 0) {
      eintr_retries = 0;
      last_activity_us_ = loop_.clock().now_us();
      if (metrics_ && metrics_->bytes_rx) {
        metrics_->bytes_rx->inc(static_cast<std::uint64_t>(n));
      }
      if (handlers_.on_data) {
        handlers_.on_data(ByteView(buf, static_cast<std::size_t>(n)));
      }
      if (static_cast<std::size_t>(n) < sizeof(buf)) return;  // drained
      continue;
    }
    if (n == 0) {  // peer FIN
      teardown(true);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR && ++eintr_retries <= kMaxEintrRetries) continue;
    teardown(true);
    return;
  }
}

bool TcpConnection::send(ByteView data) {
  if (fd_ < 0 || close_after_flush_) return false;
  std::size_t offset = 0;
  int eintr_retries = 0;
  // Fast path: no backlog, write straight to the kernel.
  if (write_queue_.empty()) {
    while (offset < data.size()) {
      // MSG_NOSIGNAL (inside checked_send): a raced peer close must
      // surface as EPIPE, not kill the process with SIGPIPE.
      const ssize_t n = checked_send(fd_, data.data() + offset,
                                     data.size() - offset);
      if (n > 0) {
        eintr_retries = 0;
        offset += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR && ++eintr_retries <= kMaxEintrRetries) {
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      teardown(true);
      return false;
    }
    last_activity_us_ = loop_.clock().now_us();
    if (metrics_ && metrics_->bytes_tx && offset > 0) {
      metrics_->bytes_tx->inc(offset);
    }
    if (offset == data.size()) {
      if (metrics_ && metrics_->write_queue_depth) {
        metrics_->write_queue_depth->record(0);
      }
      return true;
    }
  }
  // Queue the remainder, bounded.
  const std::size_t rest = data.size() - offset;
  if (queued_bytes_ + rest > max_write_queue_) {
    AMNESIA_WARN("net.tcp") << peer_ << ": write queue overflow ("
                            << queued_bytes_ + rest << " > " << max_write_queue_
                            << "); closing";
    if (metrics_ && metrics_->overflow_closes) metrics_->overflow_closes->inc();
    teardown(true);
    return false;
  }
  write_queue_.emplace_back(data.begin() + static_cast<std::ptrdiff_t>(offset),
                            data.end());
  queued_bytes_ += rest;
  if (metrics_ && metrics_->write_queue_depth) {
    metrics_->write_queue_depth->record(static_cast<Micros>(queued_bytes_));
  }
  update_epoll_interest();
  return true;
}

bool TcpConnection::flush_queue() {
  int eintr_retries = 0;
  while (!write_queue_.empty()) {
    Bytes& front = write_queue_.front();
    const std::size_t remaining = front.size() - queue_head_offset_;
    const ssize_t n = checked_send(fd_, front.data() + queue_head_offset_,
                                   remaining);
    if (n > 0) {
      eintr_retries = 0;
      last_activity_us_ = loop_.clock().now_us();
      if (metrics_ && metrics_->bytes_tx) {
        metrics_->bytes_tx->inc(static_cast<std::uint64_t>(n));
      }
      queued_bytes_ -= static_cast<std::size_t>(n);
      if (static_cast<std::size_t>(n) == remaining) {
        write_queue_.pop_front();
        queue_head_offset_ = 0;
      } else {
        queue_head_offset_ += static_cast<std::size_t>(n);
      }
      continue;
    }
    if (n < 0 && errno == EINTR && ++eintr_retries <= kMaxEintrRetries) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    teardown(true);
    return false;
  }
  return true;
}

void TcpConnection::handle_writable() {
  if (fd_ < 0) return;
  if (!flush_queue()) return;
  if (write_queue_.empty()) {
    if (close_after_flush_) {
      teardown(false);
      return;
    }
    update_epoll_interest();
  }
}

void TcpConnection::update_epoll_interest() {
  if (fd_ < 0) return;
  const bool want_out = !write_queue_.empty();
  if (want_out == epollout_armed_) return;
  epollout_armed_ = want_out;
  loop_.mod_fd(fd_, want_out ? (EPOLLIN | EPOLLOUT) : EPOLLIN);
}

void TcpConnection::close() {
  if (fd_ < 0) return;
  if (!write_queue_.empty()) {
    // Flush first, then close from handle_writable. The connection keeps
    // itself alive until then: callers routinely drop their StreamPtr
    // right after a graceful close.
    close_after_flush_ = true;
    flush_keepalive_ = shared_from_this();
    handlers_ = Handlers{};  // caller is done with this stream
    return;
  }
  teardown(false);
}

void TcpConnection::set_idle_timeout(Micros timeout_us) {
  idle_timeout_us_ = timeout_us;
  last_activity_us_ = loop_.clock().now_us();
  if (timeout_us > 0 && !idle_timer_armed_ && fd_ >= 0) {
    arm_idle_timer(timeout_us);
  }
}

void TcpConnection::arm_idle_timer(Micros delay_us) {
  idle_timer_armed_ = true;
  std::weak_ptr<TcpConnection> weak = weak_from_this();
  idle_timer_ = loop_.add_timer(delay_us, [weak]() {
    if (auto self = weak.lock()) self->on_idle_timer();
  });
}

void TcpConnection::on_idle_timer() {
  idle_timer_armed_ = false;
  if (fd_ < 0 || idle_timeout_us_ <= 0) return;
  const Micros idle = loop_.clock().now_us() - last_activity_us_;
  if (idle >= idle_timeout_us_) {
    AMNESIA_INFO("net.tcp") << peer_ << ": idle timeout after " << idle
                            << " us";
    if (metrics_ && metrics_->idle_timeouts) metrics_->idle_timeouts->inc();
    teardown(true);
    return;
  }
  arm_idle_timer(idle_timeout_us_ - idle);  // activity moved the deadline
}

void TcpConnection::teardown(bool notify) {
  if (fd_ < 0) return;
  loop_.del_fd(fd_);
  ::close(fd_);
  fd_ = -1;
  if (idle_timer_armed_) {
    loop_.cancel_timer(idle_timer_);
    idle_timer_armed_ = false;
  }
  write_queue_.clear();
  queued_bytes_ = 0;
  queue_head_offset_ = 0;
  if (metrics_ && metrics_->connections_active) {
    metrics_->connections_active->add(-1);
  }
  // Drop handlers last: sessions are typically owned by their own
  // callbacks, so this release may destroy the caller's state. The
  // graceful-close self-reference is moved into a local so that when it
  // is the final reference, destruction happens only after this frame.
  auto keepalive = std::move(flush_keepalive_);
  Handlers handlers = std::move(handlers_);
  handlers_ = Handlers{};
  if (notify && handlers.on_close) handlers.on_close();
}

// ---- TcpTransport ------------------------------------------------------

TcpTransport::TcpTransport(EventLoop& loop, std::string host,
                           std::uint16_t port)
    : loop_(loop), host_(std::move(host)), port_(port) {}

TcpTransport::~TcpTransport() {
  // Tear down surviving connections: sessions own themselves through
  // their handler captures (a reference cycle by design), so without
  // this sweep any stream still open at transport destruction — and the
  // session it anchors — would leak.
  for (auto& weak : conns_) {
    if (auto conn = weak.lock()) conn->teardown(false);
  }
  if (listen_fd_ >= 0) {
    loop_.del_fd(listen_fd_);
    ::close(listen_fd_);
  }
}

void TcpTransport::track(const std::shared_ptr<TcpConnection>& conn) {
  std::erase_if(conns_, [](const std::weak_ptr<TcpConnection>& w) {
    return w.expired();
  });
  conns_.push_back(conn);
}

void TcpTransport::set_metrics(obs::MetricsRegistry* registry) {
  if (!registry) {
    metrics_ = TcpMetrics{};
    return;
  }
  metrics_.connections_accepted = &registry->counter("net.connections_accepted");
  metrics_.connections_active = &registry->gauge("net.connections_active");
  metrics_.bytes_rx = &registry->counter("net.bytes_rx");
  metrics_.bytes_tx = &registry->counter("net.bytes_tx");
  metrics_.idle_timeouts = &registry->counter("net.idle_timeouts");
  metrics_.overflow_closes = &registry->counter("net.overflow_closes");
  metrics_.write_queue_depth = &registry->histogram("net.write_queue_depth");
  loop_.set_metrics(registry);
}

void TcpTransport::listen(AcceptHandler on_accept) {
  on_accept_ = std::move(on_accept);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw NetError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport_) {
    if (::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) <
        0) {
      throw NetError(std::string("setsockopt(SO_REUSEPORT): ") +
                     std::strerror(errno));
    }
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    throw NetError("inet_pton: bad address " + host_);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    throw NetError("bind " + host_ + ":" + std::to_string(port_) + ": " +
                   std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) < 0) {
    throw NetError(std::string("listen: ") + std::strerror(errno));
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    local_port_ = ntohs(bound.sin_port);
  }

  loop_.add_fd(listen_fd_, EPOLLIN,
               [this](std::uint32_t) { handle_accept(); });
  AMNESIA_INFO("net.tcp") << "listening on " << host_ << ":" << local_port_;
}

void TcpTransport::handle_accept() {
  while (true) {
    sockaddr_in peer_addr{};
    socklen_t len = sizeof(peer_addr);
    const int fd =
        ::accept4(listen_fd_, reinterpret_cast<sockaddr*>(&peer_addr), &len,
                  SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR && ++accept_eintr_retries_ <= kMaxEintrRetries) {
        continue;
      }
      accept_eintr_retries_ = 0;
      AMNESIA_ERROR("net.tcp") << "accept: " << std::strerror(errno);
      return;
    }
    accept_eintr_retries_ = 0;
    set_nodelay(fd);
    auto conn = std::make_shared<TcpConnection>(
        loop_, fd, addr_to_string(peer_addr), &metrics_, max_write_queue_);
    conn->start();
    track(conn);
    if (idle_timeout_us_ > 0) conn->set_idle_timeout(idle_timeout_us_);
    if (metrics_.connections_accepted) metrics_.connections_accepted->inc();
    if (metrics_.connections_active) metrics_.connections_active->add(1);
    if (on_accept_) on_accept_(conn);
  }
}

void TcpTransport::connect(ConnectHandler on_connected) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    on_connected(Result<StreamPtr>(Err::kUnavailable,
                                   std::string("socket: ") +
                                       std::strerror(errno)));
    return;
  }
  set_nonblocking(fd);
  set_nodelay(fd);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  // Dial the listening port when we bound an ephemeral one ourselves.
  addr.sin_port = htons(local_port_ != 0 ? local_port_ : port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    on_connected(Result<StreamPtr>(Err::kUnavailable,
                                   "inet_pton: bad address " + host_));
    return;
  }

  const int rc = checked_connect(fd, reinterpret_cast<sockaddr*>(&addr),
                                 sizeof(addr));
  const std::string peer = addr_to_string(addr);

  auto finish = [this, peer, on_connected](int connected_fd) {
    auto conn = std::make_shared<TcpConnection>(loop_, connected_fd, peer,
                                                &metrics_, max_write_queue_);
    conn->start();
    track(conn);
    if (metrics_.connections_active) metrics_.connections_active->add(1);
    on_connected(Result<StreamPtr>(StreamPtr(conn)));
  };

  if (rc == 0) {  // immediate success (loopback often does this)
    finish(fd);
    return;
  }
  // POSIX: EINTR on a connect() does NOT abort the attempt — the
  // connection proceeds asynchronously, exactly like EINPROGRESS. Treating
  // it as fatal (the old behavior) both leaked the in-flight connect and
  // failed a call that was going to succeed.
  if (errno != EINPROGRESS && errno != EINTR) {
    const std::string msg = std::string("connect ") + peer + ": " +
                            std::strerror(errno);
    ::close(fd);
    on_connected(Result<StreamPtr>(Err::kUnavailable, msg));
    return;
  }

  // Async connect: EPOLLOUT signals completion; SO_ERROR tells us how it
  // went. The lambda owns the fd until then.
  loop_.add_fd(fd, EPOLLOUT, [this, fd, peer, on_connected,
                              finish](std::uint32_t events) {
    loop_.del_fd(fd);
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) err = errno;
    if ((events & (EPOLLERR | EPOLLHUP)) && err == 0) err = ECONNREFUSED;
    if (err != 0) {
      ::close(fd);
      on_connected(Result<StreamPtr>(Err::kUnavailable,
                                     std::string("connect ") + peer + ": " +
                                         std::strerror(err)));
      return;
    }
    finish(fd);
  });
}

}  // namespace amnesia::net
