// EventLoop: epoll-based reactor with a hashed timer wheel and an
// eventfd wakeup channel.
//
// One loop drives any number of fds (listeners, connections) plus timers
// (RPC timeouts, idle eviction) and cross-thread posted work. Everything
// except post()/stop() must be called from the thread running the loop;
// post() writes the wakeup fd so another thread can hand work in — that is
// how benchmarks and tests inject traffic while the loop runs.
//
// Timers live in a fixed hashed wheel (256 slots x 1.024 ms granularity):
// insert and cancel are O(1); expiry visits only the slots the clock has
// crossed, so an idle loop with one 30 s timer sleeps in epoll_wait until
// that deadline rather than ticking. Timers may fire up to one tick late;
// they never fire early.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "common/clock.h"
#include "net/executor.h"
#include "obs/metrics.h"

namespace amnesia::net {

class EventLoop final : public Executor {
 public:
  /// Receives the ready EPOLL* event bits for a registered fd.
  using IoHandler = std::function<void(std::uint32_t events)>;
  using TimerId = std::uint64_t;

  EventLoop();
  ~EventLoop() override;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // ---- fd registration (loop thread only) ----------------------------
  void add_fd(int fd, std::uint32_t events, IoHandler handler);
  void mod_fd(int fd, std::uint32_t events);
  void del_fd(int fd);

  // ---- timers (loop thread only) -------------------------------------
  /// One-shot timer `delay_us` from now (clamped to >= 0). Returns an id
  /// for cancel_timer.
  TimerId add_timer(Micros delay_us, std::function<void()> fn);
  /// Returns false if the timer already fired or was cancelled.
  bool cancel_timer(TimerId id);
  std::size_t pending_timers() const { return live_timers_.size(); }

  // ---- Executor ------------------------------------------------------
  /// Thread-safe: enqueues `fn` and wakes the loop via the eventfd.
  void post(std::function<void()> fn) override;
  void run_after(Micros delay_us, std::function<void()> fn) override;
  Clock& clock() override { return clock_; }

  // ---- running -------------------------------------------------------
  /// Runs until stop(). May be called again after it returns.
  void run();
  /// Thread-safe: makes run() return after the current iteration.
  void stop();
  /// One iteration: waits at most `max_wait_us` (bounded further by the
  /// next timer deadline), dispatches ready fds, posted work, and due
  /// timers. Returns the number of callbacks dispatched.
  std::size_t poll(Micros max_wait_us);

  /// Publishes the loop-health series into `registry`. Besides the
  /// original net.epoll_wakeups / net.timers_fired counters this wires
  /// the shard-per-core vitals:
  ///   net.loop.callback_us       histogram, run time of every dispatched
  ///                              callback (fd handler, posted fn, timer)
  ///   net.loop.wake_dispatch_us  histogram, epoll wake -> handler start
  ///                              (head-of-line blocking inside a batch)
  ///   net.loop.timer_slip_us     histogram, how late each timer fired
  ///   net.loop.post_depth        gauge, posted-queue depth after the
  ///                              latest cross-thread post()
  ///   net.loop.post_depth_max    gauge, high watermark of the above
  ///   net.loop.dispatch_delay_us gauge, last observed wake->dispatch
  ///                              delay (read at request admission)
  ///   net.loop.eventfd_wakeups   counter, wakeups via the post eventfd
  /// Null histogram pointers short-circuit every probe, so an
  /// uninstrumented loop pays one predictable branch per callback.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  struct Timer {
    TimerId id;
    Micros deadline;
    std::function<void()> fn;
  };
  struct FdEntry {
    IoHandler handler;
  };

  static constexpr int kTickShift = 10;            // 1.024 ms per tick
  static constexpr std::size_t kWheelSlots = 256;  // power of two

  static std::size_t slot_of(Micros deadline) {
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(deadline) >> kTickShift) &
        (kWheelSlots - 1));
  }

  std::size_t drain_posted();
  std::size_t process_timers();
  void recompute_nearest();
  Micros wait_budget(Micros max_wait_us) const;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  WallClock clock_;
  std::map<int, std::shared_ptr<FdEntry>> fds_;

  std::array<std::vector<Timer>, kWheelSlots> wheel_;
  std::set<TimerId> live_timers_;
  std::set<TimerId> cancelled_timers_;
  Micros nearest_deadline_ = -1;  // -1: none
  std::uint64_t last_tick_ = 0;
  TimerId next_timer_id_ = 1;

  mutable std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;
  std::atomic<bool> stop_{false};

  obs::Counter* wakeups_ = nullptr;
  obs::Counter* timers_fired_ = nullptr;
  obs::Counter* eventfd_wakeups_ = nullptr;
  obs::Gauge* post_depth_ = nullptr;
  obs::Gauge* post_depth_max_ = nullptr;
  obs::Gauge* dispatch_delay_ = nullptr;
  obs::Histogram* callback_us_ = nullptr;
  obs::Histogram* wake_dispatch_us_ = nullptr;
  obs::Histogram* timer_slip_us_ = nullptr;
};

}  // namespace amnesia::net
