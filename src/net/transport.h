// Transport / ByteStream: the unified connection abstraction.
//
// The paper's prototype serves real HTTPS traffic; our reproduction grew
// up on a discrete-event simulator. This header is the seam that lets the
// same protocol stack (websvc HTTP parsing, securechan record layer, the
// server/phone/client apps) run over either:
//
//   ByteStream  an ordered, reliable, full-duplex byte pipe with
//               arbitrary chunk boundaries — a TCP connection
//               (net::TcpTransport) or a simulated stream
//               (simnet::SimStreamTransport);
//   Transport   a factory for streams: `listen` accepts inbound streams,
//               `connect` dials the peer baked into the transport at
//               construction time.
//
// Contract highlights (see docs/NETWORKING.md for the full rules):
//   - on_data delivers chunks whose boundaries carry no meaning; framing
//     is the next layer's job (net/framing.h).
//   - send() is best-effort immediate + bounded queueing; overflowing the
//     write queue closes the stream (backpressure is fail-fast, never
//     unbounded buffering).
//   - on_close fires at most once, for peer-initiated close and for
//     errors/timeouts; it does NOT fire for a locally requested close().
//   - After close() or on_close the implementation drops its Handlers, so
//     sessions owned by their own callbacks get released.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/result.h"
#include "net/executor.h"

namespace amnesia::net {

class ByteStream {
 public:
  struct Handlers {
    /// Bytes arrived; the view is valid only during the call.
    std::function<void(ByteView)> on_data;
    /// Peer closed, the stream errored, or an idle timeout fired.
    std::function<void()> on_close;
  };

  virtual ~ByteStream() = default;

  /// Must be called synchronously when the stream is handed over (from an
  /// accept or connect callback) — data arriving before handlers are set
  /// is dropped.
  virtual void set_handlers(Handlers handlers) = 0;

  /// Writes `data` (immediately if possible, queueing the remainder).
  /// Returns false if the stream is closed or the bounded write queue
  /// overflowed — in the overflow case the stream has torn itself down.
  virtual bool send(ByteView data) = 0;

  /// Graceful local close: pending writes are flushed first. on_close is
  /// not invoked for a local close.
  virtual void close() = 0;

  virtual bool closed() const = 0;

  /// Bytes currently queued behind the kernel/link (backpressure signal).
  virtual std::size_t write_queue_bytes() const = 0;

  /// Closes the stream if no bytes move in either direction for
  /// `timeout_us` (0 disables). Fires on_close — the slow-loris eviction
  /// path.
  virtual void set_idle_timeout(Micros timeout_us) = 0;

  /// Diagnostic peer label ("127.0.0.1:49152", "browser#3").
  virtual std::string peer() const = 0;
};

using StreamPtr = std::shared_ptr<ByteStream>;

class Transport {
 public:
  using AcceptHandler = std::function<void(StreamPtr)>;
  using ConnectHandler = std::function<void(Result<StreamPtr>)>;

  virtual ~Transport() = default;

  /// Starts accepting inbound streams. The accept handler must install
  /// the stream's Handlers before returning.
  virtual void listen(AcceptHandler on_accept) = 0;

  /// Dials the peer this transport was constructed towards. The handler
  /// receives the connected stream or Err::kUnavailable.
  virtual void connect(ConnectHandler on_connected) = 0;

  /// The executor that dispatches this transport's callbacks.
  virtual Executor& executor() = 0;
};

}  // namespace amnesia::net
