// TcpTransport: real POSIX TCP behind the Transport abstraction.
//
// Built from scratch on non-blocking sockets + the epoll EventLoop:
//   - Acceptor: listening socket registered for EPOLLIN; each accept4()
//     yields a non-blocking, TCP_NODELAY connection.
//   - TcpConnection: level-triggered read into a fixed 64 KiB stack
//     buffer; writes go straight to the kernel and only the unwritten
//     tail is queued (EPOLLOUT armed until the queue drains).
//   - Backpressure: the write queue is bounded (4 MiB default); a sender
//     that overruns it has a peer that stopped reading, and the
//     connection tears itself down rather than buffer without bound.
//   - Idle timeout: lazy re-check timers — when the timer fires we
//     compare against the last activity stamp and either evict (the
//     slow-loris path) or re-arm for the remaining time, so byte
//     activity never pays per-chunk timer churn.
//
// All TcpTransport/TcpConnection methods must run on the EventLoop
// thread; cross-thread callers go through EventLoop::post.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "net/event_loop.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace amnesia::net {

/// Default bound on queued-but-unsent bytes per connection.
constexpr std::size_t kDefaultMaxWriteQueue = 4u << 20;

/// Counters shared by every connection of one transport; wired into the
/// obs registry as net.* by TcpTransport::set_metrics.
struct TcpMetrics {
  obs::Counter* connections_accepted = nullptr;
  obs::Gauge* connections_active = nullptr;
  obs::Counter* bytes_rx = nullptr;
  obs::Counter* bytes_tx = nullptr;
  obs::Counter* idle_timeouts = nullptr;
  obs::Counter* overflow_closes = nullptr;
  obs::Histogram* write_queue_depth = nullptr;
};

class TcpConnection final : public ByteStream,
                            public std::enable_shared_from_this<TcpConnection> {
 public:
  /// Takes ownership of a connected non-blocking fd.
  TcpConnection(EventLoop& loop, int fd, std::string peer, TcpMetrics* metrics,
                std::size_t max_write_queue);
  ~TcpConnection() override;

  // ByteStream
  void set_handlers(Handlers handlers) override;
  bool send(ByteView data) override;
  void close() override;
  bool closed() const override { return fd_ < 0; }
  std::size_t write_queue_bytes() const override { return queued_bytes_; }
  void set_idle_timeout(Micros timeout_us) override;
  std::string peer() const override { return peer_; }

  /// Registers with the loop; called once after construction (separate
  /// from the constructor so shared_from_this works).
  void start();

 private:
  friend class TcpTransport;  // destructor teardown of surviving streams

  void on_events(std::uint32_t events);
  void handle_readable();
  void handle_writable();
  /// Drains the queue into the kernel; returns false if the connection
  /// died (handlers already notified where applicable).
  bool flush_queue();
  void update_epoll_interest();
  void arm_idle_timer(Micros delay_us);
  void on_idle_timer();
  /// Unregisters fd/timer and drops handlers. `notify` fires on_close
  /// (peer close / error / timeout); local close() passes false.
  void teardown(bool notify);

  EventLoop& loop_;
  int fd_;
  std::string peer_;
  TcpMetrics* metrics_;
  std::size_t max_write_queue_;

  Handlers handlers_;
  std::deque<Bytes> write_queue_;
  std::size_t queue_head_offset_ = 0;  // consumed prefix of front buffer
  std::size_t queued_bytes_ = 0;
  bool epollout_armed_ = false;
  bool close_after_flush_ = false;
  /// Held during close-after-flush: the epoll registration only weakly
  /// references the connection, so a graceful close must keep itself
  /// alive until the queued bytes drain even if the owner has already
  /// dropped its StreamPtr.
  std::shared_ptr<TcpConnection> flush_keepalive_;

  Micros idle_timeout_us_ = 0;
  Micros last_activity_us_ = 0;
  EventLoop::TimerId idle_timer_ = 0;
  bool idle_timer_armed_ = false;
};

/// TCP endpoint bound to one (host, port). listen() accepts on it;
/// connect() dials it. Port 0 binds an ephemeral port — read it back with
/// local_port() (how tests and the loopback bench avoid fixed ports).
class TcpTransport final : public Transport {
 public:
  TcpTransport(EventLoop& loop, std::string host, std::uint16_t port);
  ~TcpTransport() override;

  // Transport
  void listen(AcceptHandler on_accept) override;
  void connect(ConnectHandler on_connected) override;
  Executor& executor() override { return loop_; }

  /// Valid after listen(); the actually bound port.
  std::uint16_t local_port() const { return local_port_; }

  /// Enables SO_REUSEPORT on the listening socket (call before listen()).
  /// The sharded server binds N acceptors to one port and lets the kernel
  /// spread incoming connections across them; every sibling — including
  /// the first to bind — must set this or the later binds fail.
  void set_reuseport(bool on) { reuseport_ = on; }

  /// Publishes net.* counters into `registry` (nullptr detaches).
  void set_metrics(obs::MetricsRegistry* registry);
  /// Applied to every stream this transport creates from now on.
  void set_max_write_queue(std::size_t bytes) { max_write_queue_ = bytes; }
  void set_idle_timeout(Micros timeout_us) { idle_timeout_us_ = timeout_us; }

 private:
  void handle_accept();
  /// Remembers a connection so the destructor can tear down survivors
  /// whose handlers self-own them (reference cycles by design).
  void track(const std::shared_ptr<TcpConnection>& conn);

  EventLoop& loop_;
  std::string host_;
  std::uint16_t port_;
  std::uint16_t local_port_ = 0;
  int listen_fd_ = -1;
  bool reuseport_ = false;
  AcceptHandler on_accept_;
  std::size_t max_write_queue_ = kDefaultMaxWriteQueue;
  Micros idle_timeout_us_ = 0;
  int accept_eintr_retries_ = 0;
  TcpMetrics metrics_;
  std::vector<std::weak_ptr<TcpConnection>> conns_;
};

}  // namespace amnesia::net
