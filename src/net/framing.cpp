#include "net/framing.h"

namespace amnesia::net {

void append_frame(Bytes& out, ByteView payload) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<std::uint8_t>(len));
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>(len >> 16));
  out.push_back(static_cast<std::uint8_t>(len >> 24));
  append(out, payload);
}

Bytes encode_frame(ByteView payload) {
  Bytes out;
  out.reserve(4 + payload.size());
  append_frame(out, payload);
  return out;
}

bool FrameDecoder::feed(ByteView chunk, const Sink& sink) {
  if (poisoned_) return false;
  append(buf_, chunk);

  std::size_t pos = 0;
  while (buf_.size() - pos >= 4) {
    const std::uint32_t len = static_cast<std::uint32_t>(buf_[pos]) |
                              (static_cast<std::uint32_t>(buf_[pos + 1]) << 8) |
                              (static_cast<std::uint32_t>(buf_[pos + 2]) << 16) |
                              (static_cast<std::uint32_t>(buf_[pos + 3]) << 24);
    if (len > max_frame_) {
      poisoned_ = true;
      error_ = "frame length " + std::to_string(len) + " exceeds limit " +
               std::to_string(max_frame_);
      buf_.clear();
      return false;
    }
    if (buf_.size() - pos - 4 < len) break;
    sink(ByteView(buf_.data() + pos + 4, len));
    pos += 4 + static_cast<std::size_t>(len);
  }

  if (pos == buf_.size()) {
    buf_.clear();  // keeps capacity: the steady-state path never reallocates
  } else if (pos > 0) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos));
  }
  return true;
}

}  // namespace amnesia::net
