#!/bin/sh
# Builds (Release) and runs the benchmark suites, leaving
# BENCH_crypto_primitives.json, BENCH_net_loopback.json, and
# BENCH_fig3_latency.json at the repo root for regression diffing (see
# docs/PERFORMANCE.md, docs/NETWORKING.md, and docs/OBSERVABILITY.md).
# Run from anywhere inside the repo:
#
#   tools/run_benches.sh                 # both suites
#   tools/run_benches.sh 'BM_Pbkdf2.*'   # crypto suite only, by regex
#
# Note: the installed google-benchmark wants --benchmark_min_time as a
# plain double (no "s" suffix).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
filter=${1:-.}
jobs=$(nproc 2>/dev/null || echo 4)
build_dir=$repo_root/build

echo "== configure $build_dir"
cmake -B "$build_dir" -S "$repo_root" >/dev/null
echo "== build bench_crypto_primitives"
cmake --build "$build_dir" -j "$jobs" --target bench_crypto_primitives

build_type=$(grep -E '^CMAKE_BUILD_TYPE:' "$build_dir/CMakeCache.txt" |
    cut -d= -f2)
case "$build_type" in
Release | RelWithDebInfo) ;;
*)
    echo "warning: build dir is CMAKE_BUILD_TYPE=$build_type;" \
        "numbers will not be comparable to Release baselines" >&2
    ;;
esac

echo "== run (filter: $filter)"
cd "$repo_root"
"$build_dir/bench/bench_crypto_primitives" \
    --benchmark_filter="$filter" \
    --benchmark_min_time=0.2

# The loopback transport bench has its own closed-loop harness (no
# google-benchmark flags); an explicit filter means "crypto only".
if [ "$filter" = "." ]; then
    echo "== build bench_net_loopback"
    cmake --build "$build_dir" -j "$jobs" --target bench_net_loopback
    # Shard axis: unsharded baseline, half the cores, all the cores
    # (deduplicated — a 1-core host just runs the baseline). Each phase
    # row in the JSON carries its "shards" value.
    half=$((jobs / 2))
    [ "$half" -lt 1 ] && half=1
    shard_counts=$(printf '1\n%s\n%s\n' "$half" "$jobs" | sort -un |
        paste -sd, -)
    # Resumption axis: full handshake per op, ticket resume per op, and
    # pooled connections riding the shared ticket cache. Each phase row
    # carries its "resumption" mode plus handshake/resumption deltas.
    modes="cold,resumed,pooled"
    echo "== run bench_net_loopback (shards: $shard_counts; modes: $modes)"
    "$build_dir/bench/bench_net_loopback" \
        "$repo_root/BENCH_net_loopback.json" "$shard_counts" "$modes"

    # Fig. 3 latency reproduction with trace-derived critical-path
    # attribution; virtual time, so the run is fast and the artifact is
    # byte-identical per seed. Writes BENCH_fig3_latency.json into CWD.
    echo "== build bench_fig3_latency"
    cmake --build "$build_dir" -j "$jobs" --target bench_fig3_latency
    echo "== run bench_fig3_latency"
    "$build_dir/bench/bench_fig3_latency"

    # Gate: the fresh artifacts just overwrote the repo-root baselines in
    # place, so diff them against the committed copies (git show HEAD:...)
    # and fail the run on step-change latency regressions. Override the
    # slack with e.g. AMNESIA_BENCH_TOLERANCE=15 on a quiet machine.
    echo "== check against committed baselines"
    python3 "$repo_root/tools/check_bench.py" \
        --tolerance "${AMNESIA_BENCH_TOLERANCE:-35}"
fi
