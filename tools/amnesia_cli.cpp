// amnesia_cli — an interactive console over the full simulated deployment.
//
// Drives the same Testbed the integration tests use: one Amnesia server,
// one phone, a rendezvous service, a cloud store, and a browser, all in
// a deterministic discrete-event network. Commands read from stdin (one
// per line), so the tool works both interactively and scripted:
//
//   printf 'signup alice pw\nlogin alice pw\npair\nadd Alice gmail.com\n
//          gen Alice gmail.com\nstats\nquit\n' | ./tools/amnesia_cli
//
// Commands:
//   signup <user> <mp>          create an Amnesia account
//   login <user> <mp>           authenticate the browser
//   logout
//   pair                        install app + GCM registration + CAPTCHA
//   backup                      one-time K_p backup to the cloud
//   add <username> <domain>     register a website account (fresh sigma)
//   list                        list website accounts
//   gen <username> <domain>     generate the password (phone confirms)
//   rotate <username> <domain>  rotate sigma ("change this password")
//   remove <username> <domain>
//   vault-store <u> <d> <pw>    seal a chosen password (section VIII)
//   vault-get <u> <d>           unseal it (phone confirms)
//   decline on|off              make the phone decline future requests
//   phone on|off                toggle phone connectivity
//   mp-change <new_mp>          master-password recovery (both steps)
//   stats                       server/phone/network counters
//   help
//   quit
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "eval/testbed.h"

using namespace amnesia;

namespace {

struct Cli {
  eval::Testbed bed;
  std::string current_user;
  bool decline = false;

  explicit Cli() {
    bed.phone().set_confirmation_policy(
        [this](const core::PasswordRequestPush& push) {
          std::printf("[phone] request from '%s' -> %s\n",
                      push.origin_ip.c_str(),
                      decline ? "DECLINED" : "accepted");
          return !decline;
        });
  }

  void report(const Status& s, const std::string& ok_message) {
    if (s.ok()) {
      std::printf("ok: %s\n", ok_message.c_str());
    } else {
      std::printf("error (%s): %s\n", err_name(s.code()),
                  s.message().c_str());
    }
  }

  bool dispatch(const std::string& line);
};

bool Cli::dispatch(const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd.empty() || cmd[0] == '#') return true;

  auto need = [&in](std::string& out) -> bool {
    in >> out;
    return !out.empty();
  };

  if (cmd == "quit" || cmd == "exit") return false;

  if (cmd == "help") {
    std::printf("commands: signup login logout pair backup add list gen "
                "rotate remove\n          vault-store vault-get decline "
                "phone mp-change stats quit\n");
  } else if (cmd == "signup") {
    std::string user, mp;
    if (!need(user) || !need(mp)) {
      std::printf("usage: signup <user> <mp>\n");
      return true;
    }
    report(bed.signup(user, mp), "account '" + user + "' created");
  } else if (cmd == "login") {
    std::string user, mp;
    if (!need(user) || !need(mp)) {
      std::printf("usage: login <user> <mp>\n");
      return true;
    }
    const Status s = bed.login(user, mp);
    if (s.ok()) current_user = user;
    report(s, "logged in as '" + user + "'");
  } else if (cmd == "logout") {
    Status s(Err::kInternal, "pending");
    bed.browser().logout([&](Status st) { s = st; });
    bed.sim().run();
    current_user.clear();
    report(s, "logged out");
  } else if (cmd == "pair") {
    if (current_user.empty()) {
      std::printf("error: log in first\n");
      return true;
    }
    report(bed.pair_phone(current_user), "phone paired (CAPTCHA verified)");
  } else if (cmd == "backup") {
    report(bed.backup_phone(), "K_p backed up to the cloud");
  } else if (cmd == "add") {
    std::string username, domain;
    if (!need(username) || !need(domain)) {
      std::printf("usage: add <username> <domain>\n");
      return true;
    }
    report(bed.add_account(username, domain),
           username + "@" + domain + " registered");
  } else if (cmd == "list") {
    bed.browser().list_accounts([&](Result<std::vector<std::string>> r) {
      if (!r.ok()) {
        std::printf("error: %s\n", r.message().c_str());
        return;
      }
      for (const auto& entry : r.value()) {
        std::printf("  %s\n", entry.c_str());
      }
      std::printf("(%zu accounts)\n", r.value().size());
    });
    bed.sim().run();
  } else if (cmd == "gen") {
    std::string username, domain;
    if (!need(username) || !need(domain)) {
      std::printf("usage: gen <username> <domain>\n");
      return true;
    }
    const auto result = bed.get_password(username, domain);
    if (result.ok()) {
      const auto& lat = bed.server().password_latencies();
      std::printf("password: %s  (%.1f ms end to end)\n",
                  result.value().c_str(),
                  lat.empty() ? 0.0 : us_to_ms(lat.back()));
    } else {
      std::printf("error (%s): %s\n", err_name(result.code()),
                  result.message().c_str());
    }
  } else if (cmd == "rotate") {
    std::string username, domain;
    if (!need(username) || !need(domain)) {
      std::printf("usage: rotate <username> <domain>\n");
      return true;
    }
    Status s(Err::kInternal, "pending");
    bed.browser().rotate_seed(username, domain, [&](Status st) { s = st; });
    bed.sim().run();
    report(s, "seed rotated; regenerate to get the new password");
  } else if (cmd == "remove") {
    std::string username, domain;
    if (!need(username) || !need(domain)) {
      std::printf("usage: remove <username> <domain>\n");
      return true;
    }
    Status s(Err::kInternal, "pending");
    bed.browser().remove_account(username, domain,
                                 [&](Status st) { s = st; });
    bed.sim().run();
    report(s, "removed");
  } else if (cmd == "vault-store") {
    std::string username, domain, password;
    if (!need(username) || !need(domain) || !need(password)) {
      std::printf("usage: vault-store <username> <domain> <password>\n");
      return true;
    }
    Status s(Err::kInternal, "pending");
    bed.browser().vault_store(username, domain, password,
                              [&](Status st) { s = st; });
    bed.sim().run();
    report(s, "sealed under a token-derived key");
  } else if (cmd == "vault-get") {
    std::string username, domain;
    if (!need(username) || !need(domain)) {
      std::printf("usage: vault-get <username> <domain>\n");
      return true;
    }
    Result<std::string> r(Err::kInternal, "pending");
    bed.browser().vault_retrieve(username, domain,
                                 [&](Result<std::string> res) { r = res; });
    bed.sim().run();
    if (r.ok()) {
      std::printf("vault password: %s\n", r.value().c_str());
    } else {
      std::printf("error (%s): %s\n", err_name(r.code()),
                  r.message().c_str());
    }
  } else if (cmd == "decline") {
    std::string mode;
    need(mode);
    decline = mode == "on";
    std::printf("phone confirmation policy: %s\n",
                decline ? "decline everything" : "accept");
  } else if (cmd == "phone") {
    std::string mode;
    need(mode);
    const bool online = mode != "off";
    bed.net().set_online("phone", online);
    if (online) {
      Status s(Err::kInternal, "pending");
      bed.phone().reconnect([&](Status st) { s = st; });
      bed.sim().run();
    }
    std::printf("phone is now %s\n", online ? "online" : "offline");
  } else if (cmd == "mp-change") {
    std::string new_mp;
    if (!need(new_mp)) {
      std::printf("usage: mp-change <new_mp>\n");
      return true;
    }
    Status s(Err::kInternal, "pending");
    bed.browser().start_mp_change(new_mp, [&](Status st) { s = st; });
    bed.sim().run();
    if (!s.ok()) {
      report(s, "");
      return true;
    }
    bed.phone().submit_pid_for_mp_change(current_user,
                                         [&](Status st) { s = st; });
    bed.sim().run();
    report(s, "master password changed; all sessions revoked — log in again");
    current_user.clear();
  } else if (cmd == "stats") {
    const auto& srv = bed.server().stats();
    const auto& ph = bed.phone().stats();
    const auto& net = bed.net().stats();
    std::printf("server: logins ok/fail/throttled %llu/%llu/%llu, "
                "passwords %llu, declines %llu, timeouts %llu, cache hits "
                "%llu\n",
                (unsigned long long)srv.logins_ok,
                (unsigned long long)srv.logins_failed,
                (unsigned long long)srv.logins_throttled,
                (unsigned long long)srv.passwords_generated,
                (unsigned long long)srv.requests_declined,
                (unsigned long long)srv.requests_timed_out,
                (unsigned long long)srv.cache_hits);
    std::printf("phone:  pushes %llu, tokens %llu, declines %llu\n",
                (unsigned long long)ph.pushes_received,
                (unsigned long long)ph.tokens_sent,
                (unsigned long long)ph.requests_declined);
    std::printf("net:    sent %zu delivered %zu lost %zu (virtual time "
                "%.1f s)\n",
                net.sent, net.delivered,
                net.lost_on_link + net.dropped_offline +
                    net.dropped_no_destination,
                us_to_ms(bed.sim().now()) / 1000.0);
  } else {
    std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
  }
  return true;
}

}  // namespace

int main() {
  std::printf("amnesia_cli — simulated Amnesia deployment "
              "(type 'help' for commands)\n");
  Cli cli;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!cli.dispatch(line)) break;
  }
  return 0;
}
