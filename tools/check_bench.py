#!/usr/bin/env python3
"""Compare freshly produced BENCH_*.json artifacts against the committed
baselines and fail on latency regressions.

tools/run_benches.sh rewrites the artifacts at the repo root in place, so
the previous numbers live in git history. This script diffs the working-tree
files against `git show HEAD:<file>` and flags any comparable latency metric
that got slower by more than the tolerance:

  BENCH_crypto_primitives.json   ns_per_op, per benchmark name
  BENCH_net_loopback.json        p50_us / p99_us, per (phase, resumption,
                                 shards, concurrency, pipeline_depth) row
  BENCH_fig3_latency.json        median_ms / mean_ms, per network

Usage:
  tools/check_bench.py [--tolerance PCT] [--baseline REF] [files...]

Throughput-style metrics (req_per_s, mb_per_s) are deliberately ignored:
they are the reciprocal view of the same samples. A metric present on only
one side (new benchmark, renamed phase) is reported as informational, never
a failure — growing the suite must not break the gate. Exit status: 0 when
every shared metric is within tolerance, 1 otherwise, 2 on usage errors.

The default tolerance is deliberately loose (35%): these are wall-clock
micro-benchmarks on shared machines and the gate is meant to catch
step-change regressions (an accidental debug build, a quadratic loop on the
hot path), not 5% noise. Tighten with --tolerance for a quiet box.
"""

import argparse
import json
import os
import subprocess
import sys

DEFAULT_FILES = [
    "BENCH_crypto_primitives.json",
    "BENCH_net_loopback.json",
    "BENCH_fig3_latency.json",
]


def load_committed(repo_root, ref, relpath):
    """The committed baseline, or None when the file is new at `ref`."""
    try:
        blob = subprocess.run(
            ["git", "show", f"{ref}:{relpath}"],
            cwd=repo_root,
            capture_output=True,
            check=True,
        ).stdout
    except subprocess.CalledProcessError:
        return None
    return json.loads(blob)


def latency_metrics(doc):
    """Flattens one artifact into {metric_key: value_in_its_unit}."""
    out = {}
    bench = doc.get("bench", "?")
    if bench == "crypto_primitives":
        for row in doc.get("results", []):
            out[f"{row['name']} ns_per_op"] = row["ns_per_op"]
    elif bench == "net_loopback":
        for row in doc.get("phases", []):
            key = (
                f"{row.get('phase')} {row.get('resumption', '?')} "
                f"shards={row.get('shards')} c={row.get('concurrency')} "
                f"depth={row.get('pipeline_depth')}"
            )
            for metric in ("p50_us", "p99_us"):
                if metric in row:
                    out[f"{key} {metric}"] = row[metric]
    elif bench == "fig3_latency":
        for row in doc.get("networks", []):
            for metric in ("median_ms", "mean_ms", "p99_ms"):
                if metric in row:
                    out[f"{row['name']} {metric}"] = row[metric]
    return out


def compare(relpath, fresh, baseline, tolerance):
    """Returns (regressions, lines) for one artifact."""
    lines = []
    regressions = 0
    fresh_m = latency_metrics(fresh)
    base_m = latency_metrics(baseline)
    shared = sorted(set(fresh_m) & set(base_m))
    for key in sorted(set(base_m) - set(fresh_m)):
        lines.append(f"  note: {key}: only in baseline (removed?)")
    for key in sorted(set(fresh_m) - set(base_m)):
        lines.append(f"  note: {key}: new metric, no baseline")
    for key in shared:
        old, new = base_m[key], fresh_m[key]
        if old <= 0:
            continue
        delta = (new - old) / old * 100.0
        if delta > tolerance:
            regressions += 1
            lines.append(
                f"  REGRESSION {key}: {old:g} -> {new:g} "
                f"(+{delta:.1f}% > {tolerance:g}%)"
            )
        elif abs(delta) > tolerance / 2:
            # Near the gate either way: worth a line in the log.
            lines.append(f"  note: {key}: {old:g} -> {new:g} ({delta:+.1f}%)")
    lines.insert(
        0,
        f"{relpath}: {len(shared)} metrics compared, "
        f"{regressions} beyond +{tolerance:g}%",
    )
    return regressions, lines


def main():
    parser = argparse.ArgumentParser(
        description="diff BENCH_*.json latency metrics against git baselines"
    )
    parser.add_argument("--tolerance", type=float, default=35.0,
                        help="allowed slowdown in percent (default: 35)")
    parser.add_argument("--baseline", default="HEAD",
                        help="git ref holding the baselines (default: HEAD)")
    parser.add_argument("files", nargs="*", default=None,
                        help="artifacts to check (default: the known three)")
    args = parser.parse_args()
    if args.tolerance <= 0:
        parser.error("--tolerance must be positive")

    script_dir = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.dirname(script_dir)
    files = args.files or DEFAULT_FILES

    total_regressions = 0
    checked = 0
    for relpath in files:
        path = os.path.join(repo_root, relpath)
        if not os.path.exists(path):
            print(f"{relpath}: missing from working tree, skipped")
            continue
        with open(path) as fh:
            fresh = json.load(fh)
        baseline = load_committed(repo_root, args.baseline, relpath)
        if baseline is None:
            print(f"{relpath}: no committed baseline at {args.baseline}, "
                  "skipped")
            continue
        regressions, lines = compare(relpath, fresh, baseline, args.tolerance)
        print("\n".join(lines))
        total_regressions += regressions
        checked += 1

    if checked == 0:
        print("check_bench: nothing to compare")
        return 0
    if total_regressions:
        print(f"check_bench: FAIL ({total_regressions} regressed metrics)")
        return 1
    print("check_bench: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
