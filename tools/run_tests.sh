#!/bin/sh
# Builds and runs the full test suite twice: once plain, once under
# AddressSanitizer + UndefinedBehaviorSanitizer (AMNESIA_SANITIZE, see the
# top-level CMakeLists.txt). Run from anywhere inside the repo:
#
#   tools/run_tests.sh            # both passes
#   tools/run_tests.sh plain      # plain pass only
#   tools/run_tests.sh sanitize   # ASan+UBSan pass only
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
mode=${1:-all}
jobs=$(nproc 2>/dev/null || echo 4)

run_pass() {
    build_dir=$1
    shift
    echo "== configure $build_dir ($*)"
    cmake -B "$repo_root/$build_dir" -S "$repo_root" "$@" >/dev/null
    echo "== build $build_dir"
    cmake --build "$repo_root/$build_dir" -j "$jobs"
    echo "== ctest $build_dir"
    ctest --test-dir "$repo_root/$build_dir" --output-on-failure -j "$jobs"
    # Smoke-run the bench harness so it cannot bit-rot between perf PRs
    # (full runs are tools/run_benches.sh's job). Executed inside the build
    # dir so its JSON artifact does not clobber a real one at the repo root.
    echo "== bench smoke $build_dir"
    (cd "$repo_root/$build_dir" &&
        ./bench/bench_crypto_primitives \
            --benchmark_filter='BM_Sha256/64$' \
            --benchmark_min_time=0.01 >/dev/null)
}

case "$mode" in
plain)
    run_pass build
    ;;
sanitize)
    run_pass build-san -DAMNESIA_SANITIZE=address,undefined
    ;;
all)
    run_pass build
    run_pass build-san -DAMNESIA_SANITIZE=address,undefined
    ;;
*)
    echo "usage: $0 [plain|sanitize|all]" >&2
    exit 2
    ;;
esac

echo "== all requested passes green"
