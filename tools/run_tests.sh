#!/bin/sh
# Builds and runs the full test suite three ways: plain, under
# AddressSanitizer + UndefinedBehaviorSanitizer, and — for the src/net
# event loop / transport tests, which are the only multithreaded hot
# paths — under ThreadSanitizer (AMNESIA_SANITIZE, see the top-level
# CMakeLists.txt). Run from anywhere inside the repo:
#
#   tools/run_tests.sh            # all passes
#   tools/run_tests.sh plain      # plain pass only
#   tools/run_tests.sh sanitize   # ASan+UBSan pass only
#   tools/run_tests.sh tsan       # TSan pass (net tests) only
#   tools/run_tests.sh faults     # fault-injection/torture pass
#
# The faults pass runs the resilience suites (seeded fault injection,
# storage crash-schedule torture, degraded-mode end-to-end) plain and
# under ASan+UBSan, with the torture sweep cranked up. Scale it with
# AMNESIA_TORTURE_ITERS=<n>; a torture failure prints the failing
# iteration's seed — replay exactly that schedule with
# AMNESIA_TORTURE_SEED=<seed>. All fault suites use fixed seeds, so
# every pass is deterministic; the regular plain/sanitize/tsan passes
# already include them at the tier-1 default of 1000 iterations.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
mode=${1:-all}
jobs=$(nproc 2>/dev/null || echo 4)

run_pass() {
    build_dir=$1
    test_filter=$2
    shift 2
    echo "== configure $build_dir ($*)"
    cmake -B "$repo_root/$build_dir" -S "$repo_root" "$@" >/dev/null
    echo "== build $build_dir"
    cmake --build "$repo_root/$build_dir" -j "$jobs"
    echo "== ctest $build_dir"
    ctest --test-dir "$repo_root/$build_dir" --output-on-failure -j "$jobs" \
        ${test_filter:+-R "$test_filter"}
    # Smoke-run the bench harness so it cannot bit-rot between perf PRs
    # (full runs are tools/run_benches.sh's job). Executed inside the build
    # dir so its JSON artifact does not clobber a real one at the repo root.
    if [ -z "$test_filter" ]; then
        echo "== bench smoke $build_dir"
        (cd "$repo_root/$build_dir" &&
            ./bench/bench_crypto_primitives \
                --benchmark_filter='BM_Sha256/64$' \
                --benchmark_min_time=0.01 >/dev/null)
    fi
}

# The TSan pass covers the binaries that exercise threads against the
# epoll loop: EventLoop::post from foreign threads, the HttpServer worker
# pool over TcpTransport, and the securechan framing used on both. The
# net tests include the injected-EINTR/connect-failure cases, so syscall
# fault paths run under TSan too. The tracing suites join the pass
# because the span store (sharded rings + open table) and trace
# propagation over real TCP are multithreaded hot paths. The shard
# suites drive the multi-reactor deployment (SO_REUSEPORT acceptors, one
# EventLoop thread per shard, cross-shard mailbox posts), which is the
# most thread-heavy path in the tree. The cluster suites add the
# replicated testbeds: the TCP failover test runs a whole two-replica
# cluster on a reactor thread while the main thread drives clients. The
# profiler suites hammer SIGPROF delivery against concurrent scrapes and
# the slowlog suites drive the sharded flight recorder, so both join.
tsan_filter='net_|securechan_stream|obs_trace|trace_propagation|shard_|securechan_resume|websvc_pool|cluster_|obs_profiler_|slowlog_'

# Everything driven by resilience::FaultInjector plus the degraded-mode
# end-to-end suites; cluster_ brings the mid-round primary-crash drills
# and storage_codec_fuzz the hostile-bytes sweeps over the AMDB codecs.
# and storage_codec_fuzz the hostile-bytes sweeps over the AMDB codecs;
# obs_profiler_ includes the signal-safety smoke (profiler armed across
# the storage torture schedules) and slowlog_ the faulted-leg scrapes.
fault_filter='resilience_|storage_torture|net_tcp|rendezvous_cloud|obs_test|trace_propagation|shard_|securechan_resume|websvc_pool|cluster_|storage_codec_fuzz|obs_profiler_|slowlog_'

case "$mode" in
plain)
    run_pass build ""
    ;;
sanitize)
    run_pass build-san "" -DAMNESIA_SANITIZE=address,undefined
    ;;
tsan)
    run_pass build-tsan "$tsan_filter" -DAMNESIA_SANITIZE=thread
    ;;
faults)
    AMNESIA_TORTURE_ITERS=${AMNESIA_TORTURE_ITERS:-5000}
    export AMNESIA_TORTURE_ITERS
    echo "== fault pass (AMNESIA_TORTURE_ITERS=$AMNESIA_TORTURE_ITERS)"
    run_pass build "$fault_filter"
    run_pass build-san "$fault_filter" -DAMNESIA_SANITIZE=address,undefined
    ;;
all)
    run_pass build ""
    run_pass build-san "" -DAMNESIA_SANITIZE=address,undefined
    run_pass build-tsan "$tsan_filter" -DAMNESIA_SANITIZE=thread
    ;;
*)
    echo "usage: $0 [plain|sanitize|tsan|faults|all]" >&2
    exit 2
    ;;
esac

echo "== all requested passes green"
