#!/bin/sh
# Builds and runs the full test suite three ways: plain, under
# AddressSanitizer + UndefinedBehaviorSanitizer, and — for the src/net
# event loop / transport tests, which are the only multithreaded hot
# paths — under ThreadSanitizer (AMNESIA_SANITIZE, see the top-level
# CMakeLists.txt). Run from anywhere inside the repo:
#
#   tools/run_tests.sh            # all passes
#   tools/run_tests.sh plain      # plain pass only
#   tools/run_tests.sh sanitize   # ASan+UBSan pass only
#   tools/run_tests.sh tsan       # TSan pass (net tests) only
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
mode=${1:-all}
jobs=$(nproc 2>/dev/null || echo 4)

run_pass() {
    build_dir=$1
    test_filter=$2
    shift 2
    echo "== configure $build_dir ($*)"
    cmake -B "$repo_root/$build_dir" -S "$repo_root" "$@" >/dev/null
    echo "== build $build_dir"
    cmake --build "$repo_root/$build_dir" -j "$jobs"
    echo "== ctest $build_dir"
    ctest --test-dir "$repo_root/$build_dir" --output-on-failure -j "$jobs" \
        ${test_filter:+-R "$test_filter"}
    # Smoke-run the bench harness so it cannot bit-rot between perf PRs
    # (full runs are tools/run_benches.sh's job). Executed inside the build
    # dir so its JSON artifact does not clobber a real one at the repo root.
    if [ -z "$test_filter" ]; then
        echo "== bench smoke $build_dir"
        (cd "$repo_root/$build_dir" &&
            ./bench/bench_crypto_primitives \
                --benchmark_filter='BM_Sha256/64$' \
                --benchmark_min_time=0.01 >/dev/null)
    fi
}

# The TSan pass covers the binaries that exercise threads against the
# epoll loop: EventLoop::post from foreign threads, the HttpServer worker
# pool over TcpTransport, and the securechan framing used on both.
tsan_filter='net_|securechan_stream'

case "$mode" in
plain)
    run_pass build ""
    ;;
sanitize)
    run_pass build-san "" -DAMNESIA_SANITIZE=address,undefined
    ;;
tsan)
    run_pass build-tsan "$tsan_filter" -DAMNESIA_SANITIZE=thread
    ;;
all)
    run_pass build ""
    run_pass build-san "" -DAMNESIA_SANITIZE=address,undefined
    run_pass build-tsan "$tsan_filter" -DAMNESIA_SANITIZE=thread
    ;;
*)
    echo "usage: $0 [plain|sanitize|tsan|all]" >&2
    exit 2
    ;;
esac

echo "== all requested passes green"
