// Regenerates Table I: the Amnesia server's per-user data at rest, for a
// user provisioned with the paper's three example accounts.
//
//   ./bench/bench_table1_serverdata
#include <cstdio>

#include "eval/testbed.h"

using namespace amnesia;

namespace {
std::string elide(const std::string& hex) {
  return "0x" + hex.substr(0, 7) + ". . .";
}
}  // namespace

int main() {
  eval::Testbed bed;
  if (!bed.provision("alice", "master password").ok() ||
      !bed.add_account("Alice", "mail.google.com").ok() ||
      !bed.add_account("Alice2", "www.facebook.com").ok() ||
      !bed.add_account("Bob", "www.yahoo.com").ok()) {
    std::fprintf(stderr, "provisioning failed\n");
    return 1;
  }

  const auto user = bed.server().db().get_user("alice").value();
  std::printf("TABLE I: Server Side Data\n");
  std::printf("  %-16s | %s\n", "Data", "Value");
  std::printf("  -----------------+---------------------------------------\n");
  std::printf("  %-16s | %s\n", "Oid", elide(user.oid.hex()).c_str());
  std::printf("  %-16s | %s\n", "Registration ID",
              (user.registration_id->substr(0, 12) + " . . .").c_str());
  std::printf("  %-16s | %s\n", "H(MP + salt)",
              elide(hex_encode(user.mp_record.hash)).c_str());
  std::printf("  %-16s | %s\n", "H(Pid + salt)",
              elide(hex_encode(user.pid_record->hash)).c_str());
  std::printf("  %-16s | %s\n", "Salt",
              elide(hex_encode(user.mp_record.salt)).c_str());
  int i = 1;
  for (const auto& account : bed.server().db().list_accounts("alice")) {
    std::printf("  (u,d,s)%-9d | (%s, %s, %s)\n", i++,
                account.id.username.c_str(), account.id.domain.c_str(),
                elide(account.seed.hex()).c_str());
  }
  std::printf("\n  (u is the account username, d the domain, s the 256-bit "
              "seed;\n   Oid is 512-bit; MP and Pid are stored only hashed "
              "and salted.)\n");
  return 0;
}
