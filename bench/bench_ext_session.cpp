// Extension ablation A4: the section-VIII session mechanism.
//
// The paper's prototype requires a phone confirmation for every password
// request and names that as a usability limitation, planning "a session
// mechanism" as future work. This bench drives a realistic browsing day —
// bursty revisits to a small set of sites — against the implemented
// per-session password cache, sweeping the TTL: phone interactions and
// mean user-perceived wait drop sharply, quantifying the usability win
// (and the window during which a hijacked session could reuse a cached
// password, which is the security cost).
//
//   ./bench/bench_ext_session
#include <cstdio>
#include <string>
#include <vector>

#include "crypto/drbg.h"
#include "eval/stats.h"
#include "eval/testbed.h"

using namespace amnesia;

namespace {

struct Visit {
  Micros at_us;
  int account;
};

/// A synthetic 8-hour browsing day: bursts of revisits to a Zipf-ish
/// favourite set (mail checked constantly, the bank once).
std::vector<Visit> make_workload(int accounts, std::uint64_t seed) {
  crypto::ChaChaDrbg rng(seed);
  std::vector<Visit> visits;
  Micros t = 0;
  const Micros day = 8ll * 3600 * 1'000'000;
  while (t < day) {
    t += static_cast<Micros>(-std::log(rng.uniform01()) * 6.0 * 60 *
                             1'000'000);  // ~6 min mean inter-arrival
    // Zipf-ish account choice: favour low indices.
    const double u = rng.uniform01();
    const int account =
        static_cast<int>(u * u * static_cast<double>(accounts));
    visits.push_back({t, std::min(account, accounts - 1)});
  }
  return visits;
}

struct RunStats {
  std::size_t visits = 0;
  std::uint64_t phone_confirmations = 0;
  std::uint64_t cache_hits = 0;
  double mean_wait_ms = 0.0;
};

RunStats run_day(Micros ttl_us, const std::vector<Visit>& workload) {
  eval::TestbedConfig config;
  config.seed = 31337;
  config.server.password_cache_ttl_us = ttl_us;
  eval::Testbed bed(config);
  if (!bed.provision("dayuser", "mp").ok()) std::exit(1);
  constexpr int kAccounts = 8;
  for (int i = 0; i < kAccounts; ++i) {
    if (!bed.add_account("u" + std::to_string(i),
                         "site" + std::to_string(i) + ".example")
             .ok()) {
      std::exit(1);
    }
  }
  const auto baseline_pushes = bed.phone().stats().pushes_received;

  std::vector<double> waits_ms;
  for (const Visit& visit : workload) {
    bed.sim().run_until(visit.at_us);
    const Micros before = bed.sim().now();
    const std::string username = "u" + std::to_string(visit.account);
    const std::string domain =
        "site" + std::to_string(visit.account) + ".example";
    auto result = bed.get_password(username, domain);
    if (!result.ok() && result.code() == Err::kAuthFailed) {
      // The web session idled out during a long gap; log back in, as the
      // user would (the re-login is part of the measured wait).
      if (!bed.login("dayuser", "mp").ok()) std::exit(1);
      result = bed.get_password(username, domain);
    }
    if (!result.ok()) {
      std::fprintf(stderr, "request failed: %s\n", result.message().c_str());
      std::exit(1);
    }
    waits_ms.push_back(us_to_ms(bed.sim().now() - before));
  }

  RunStats stats;
  stats.visits = workload.size();
  stats.phone_confirmations =
      bed.phone().stats().pushes_received - baseline_pushes;
  stats.cache_hits = bed.server().stats().cache_hits;
  stats.mean_wait_ms = eval::summarize(waits_ms).mean;
  return stats;
}

}  // namespace

int main() {
  const auto workload = make_workload(8, 99);
  std::printf("Extension: session mechanism (8-hour day, %zu password "
              "requests across 8 sites)\n\n",
              workload.size());
  std::printf("%-12s %14s %12s %14s %16s\n", "cache TTL", "phone taps",
              "cache hits", "mean wait ms", "exposure window");

  struct TtlOption {
    const char* label;
    Micros ttl;
  };
  const TtlOption options[] = {
      {"off (paper)", 0},
      {"1 min", 60ll * 1'000'000},
      {"5 min", 5ll * 60 * 1'000'000},
      {"15 min", 15ll * 60 * 1'000'000},
      {"60 min", 60ll * 60 * 1'000'000},
  };
  for (const auto& option : options) {
    const auto stats = run_day(option.ttl, workload);
    std::printf("%-12s %14llu %12llu %14.1f %16s\n", option.label,
                static_cast<unsigned long long>(stats.phone_confirmations),
                static_cast<unsigned long long>(stats.cache_hits),
                stats.mean_wait_ms, option.label);
  }

  std::printf("\nReadout: every cached hit replaces a ~800 ms phone "
              "round-trip (and a user\ninteraction) with a ~100 ms server "
              "round-trip; the TTL bounds how long a\nhijacked session "
              "could replay a generation without a fresh confirmation.\n");
  return 0;
}
