// Regenerates Table III: the Bonneau-framework comparative evaluation of
// Password / Firefox (MP) / LastPass / Tapas / Amnesia.
//
//   ./bench/bench_table3_comparative [--explain]
#include <cstdio>
#include <cstring>

#include "eval/uds.h"

using namespace amnesia::eval;

int main(int argc, char** argv) {
  const bool explain = argc > 1 && std::strcmp(argv[1], "--explain") == 0;

  const auto schemes = table3_schemes();
  std::printf("TABLE III: Amnesia Comparative Evaluation "
              "(Y = fulfills, o = semi-fulfills, - = does not)\n\n");
  std::printf("%s\n", render_table3(schemes).c_str());

  std::printf("Per-category tallies (fulfilled / semi / unfulfilled):\n");
  std::printf("%-14s %-16s %-16s %-16s\n", "Scheme", "Usability",
              "Deployability", "Security");
  for (const auto& scheme : schemes) {
    const auto u = scheme.tally(Category::kUsability);
    const auto d = scheme.tally(Category::kDeployability);
    const auto s = scheme.tally(Category::kSecurity);
    std::printf("%-14s %2d / %2d / %2d     %2d / %2d / %2d     "
                "%2d / %2d / %2d\n",
                scheme.name.c_str(), u[0], u[1], u[2], d[0], d[1], d[2],
                s[0], s[1], s[2]);
  }

  std::printf("\nPaper narrative checks:\n");
  const auto& amnesia = schemes.back();
  const auto d = amnesia.tally(Category::kDeployability);
  std::printf("  Amnesia fulfills all deployability but Mature: %s\n",
              d[0] == 5 && d[2] == 1 ? "yes" : "NO");
  std::printf("  Amnesia concedes physical + internal observation: %s\n",
              amnesia.cell(Benefit::kResilientToPhysicalObservation).score ==
                          Score::kNo &&
                      amnesia.cell(Benefit::kResilientToInternalObservation)
                              .score == Score::kNo
                  ? "yes"
                  : "NO");

  if (explain) {
    std::printf("\n");
    for (const auto& scheme : schemes) {
      std::printf("%s\n", render_rationales(scheme).c_str());
    }
  } else {
    std::printf("\n(run with --explain for the per-cell rationale of every "
                "mark)\n");
  }
  return 0;
}
