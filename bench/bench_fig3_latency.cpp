// Regenerates Fig. 3 and the section VI-B summary statistics: password
// generation latency over WiFi and 4G, 100 trials each.
//
// Paper targets: WiFi x=785.3 ms sigma=171.5 ms; 4G x=978.7 ms
// sigma=137.9 ms. The shape claims (WiFi < 4G; sub-1.4 s trials; the
// dispersion ordering) are what must reproduce; absolute numbers follow
// the calibrated link profiles (see src/simnet/link.cpp and DESIGN.md).
//
// Per-phase latency percentiles come from the testbed's MetricsRegistry
// histograms, and the per-hop breakdown is derived from the *real trace
// trees* of the trials: every login is one distributed trace
// (browser -> server -> GCM -> phone -> server -> browser), and
// critical-path attribution splits each trial's wall time into the self
// time of each hop. Everything is virtual time, so the JSON artifact
// (BENCH_fig3_latency.json, including a full sample trace tree and the
// per-bucket histogram exemplars) is byte-identical across runs with the
// same seed — with one deliberate exception: the "profile" section comes
// from the wall-clock sampling profiler (real CPU, real stacks) and
// varies run to run. The regression gate reads only the deterministic
// metrics, so this does not perturb tools/check_bench.py.
//
//   ./bench/bench_fig3_latency [trials] [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "eval/latency.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

using namespace amnesia;

namespace {

/// One row per non-empty registry histogram: phase percentiles in ms.
void print_phase_table(const obs::Snapshot& snapshot) {
  std::printf("    %-44s %6s %9s %9s %9s %9s\n", "phase histogram", "count",
              "p50", "p95", "p99", "max");
  for (const auto& [name, hist] : snapshot.histograms) {
    if (hist.count == 0) continue;
    std::printf("    %-44s %6llu %9.1f %9.1f %9.1f %9.1f\n", name.c_str(),
                static_cast<unsigned long long>(hist.count),
                us_to_ms(obs::quantile(hist, 0.50)),
                us_to_ms(obs::quantile(hist, 0.95)),
                us_to_ms(obs::quantile(hist, 0.99)), us_to_ms(hist.max));
  }
}

/// Critical-path table of one network: where each trial's wall clock
/// actually went, per hop, attributed from the real trace trees. "share"
/// is each hop's slice of the summed self time (hops can overlap — the
/// phone's token-POST response rides the downlink after the browser
/// already has its password — so the slices are of span time, not of
/// the browser-observed end-to-end mean).
void print_critical_path(const eval::LatencyResult& result, int trials) {
  std::printf("    %-24s %-10s %6s %12s %12s %10s\n", "hop (span)",
              "component", "count", "self total", "mean/trial", "share");
  Micros root_self_total = 0;
  for (const auto& e : result.critical_path) root_self_total += e.self_us;
  for (const auto& e : result.critical_path) {
    const double mean_ms =
        trials > 0 ? us_to_ms(e.self_us) / trials : 0.0;
    const double share =
        root_self_total > 0
            ? 100.0 * static_cast<double>(e.self_us) /
                  static_cast<double>(root_self_total)
            : 0.0;
    std::printf("    %-24s %-10s %6llu %10.1fms %10.2fms %9.1f%%\n",
                e.name.c_str(), e.component.c_str(),
                static_cast<unsigned long long>(e.count),
                us_to_ms(e.self_us), mean_ms, share);
  }
}

std::string critical_path_json(const eval::LatencyResult& result) {
  std::string out = "[";
  for (std::size_t i = 0; i < result.critical_path.size(); ++i) {
    const auto& e = result.critical_path[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s\n       {\"name\": \"%s\", \"component\": \"%s\", "
                  "\"count\": %llu, \"self_us\": %lld, \"total_us\": %lld}",
                  i ? "," : "", e.name.c_str(), e.component.c_str(),
                  static_cast<unsigned long long>(e.count),
                  static_cast<long long>(e.self_us),
                  static_cast<long long>(e.total_us));
    out += buf;
  }
  out += "]";
  return out;
}

/// Exemplar table of one network: every histogram bucket that kept a
/// linked trace. The trace id is the GET /trace/<id> key; with the same
/// seed the table is byte-identical across runs.
void print_exemplars(const obs::Snapshot& snapshot) {
  std::printf("    %-40s %10s %10s %-32s %s\n", "histogram", "bucket<=ms",
              "value ms", "trace id", "attr");
  for (const auto& [name, hist] : snapshot.histograms) {
    for (const auto& ex : hist.exemplars) {
      const bool overflow = ex.bucket >= hist.bounds.size();
      char bound[32];
      if (overflow) {
        std::snprintf(bound, sizeof(bound), "%10s", "+inf");
      } else {
        std::snprintf(bound, sizeof(bound), "%10.1f",
                      us_to_ms(hist.bounds[ex.bucket]));
      }
      std::printf("    %-40s %s %10.1f %-32s %s\n", name.c_str(), bound,
                  us_to_ms(ex.value), obs::trace_id_hex(ex.trace_id).c_str(),
                  ex.attr.empty() ? "-" : ex.attr.c_str());
    }
  }
}

std::string exemplars_json(const obs::Snapshot& snapshot) {
  std::string out = "[";
  bool first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    for (const auto& ex : hist.exemplars) {
      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    "%s\n       {\"histogram\": \"%s\", \"bucket\": %llu, "
                    "\"trace_id\": \"%s\", \"value_us\": %lld, "
                    "\"attr\": \"%s\"}",
                    first ? "" : ",", name.c_str(),
                    static_cast<unsigned long long>(ex.bucket),
                    obs::trace_id_hex(ex.trace_id).c_str(),
                    static_cast<long long>(ex.value), ex.attr.c_str());
      out += buf;
      first = false;
    }
  }
  out += "]";
  return out;
}

std::string hotspots_json(const std::vector<obs::CollapsedLine>& hotspots) {
  std::string out = "[";
  for (std::size_t i = 0; i < hotspots.size(); ++i) {
    // Demangled frames can carry quotes/backslashes (rarely, but e.g.
    // literal operators); escape so the artifact stays valid JSON.
    std::string stack;
    for (const char c : hotspots[i].stack) {
      if (c == '"' || c == '\\') stack += '\\';
      stack += c;
    }
    if (i) out += ",";
    out += "\n       {\"stack\": \"";
    out += stack;
    out += "\", \"count\": ";
    out += std::to_string(hotspots[i].count);
    out += "}";
  }
  out += "]";
  return out;
}

/// to_json() yields a complete document; trim the trailing newline so it
/// embeds as a nested object.
std::string embed_json(const obs::Snapshot& snapshot) {
  std::string json = obs::to_json(snapshot);
  while (!json.empty() && json.back() == '\n') json.pop_back();
  return json;
}

std::string embed_trace(const std::string& trace_json) {
  if (trace_json.empty()) return "[]";
  std::string json = trace_json;
  while (!json.empty() && json.back() == '\n') json.pop_back();
  return json;
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 100;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2016;

  std::printf("Fig. 3 — Amnesia password-generation latency "
              "(%d trials per network, seed %llu)\n\n",
              trials, static_cast<unsigned long long>(seed));

  // Sample the bench itself: the trials run in virtual time but burn
  // real CPU (crypto, codecs, the simulator), and the collapsed profile
  // names where. Wall-clock, hence the one nondeterministic JSON section.
  obs::Profiler::instance().start();
  const auto results = eval::run_fig3(trials, seed);
  obs::Profiler::instance().stop();
  const std::string profile = obs::Profiler::instance().collapsed();
  const auto hotspots = obs::top_collapsed(profile, 10);

  // The figure annotates a handful of individual trials; print the first
  // 12 of each series the same way.
  std::printf("%-6s", "trial");
  for (const auto& result : results) {
    std::printf("%12s", result.network_name.c_str());
  }
  std::printf("   (ms)\n");
  for (int i = 0; i < 12 && i < trials; ++i) {
    std::printf("%-6d", i + 1);
    for (const auto& result : results) {
      std::printf("%12.0f", result.samples_ms[static_cast<std::size_t>(i)]);
    }
    std::printf("\n");
  }

  std::printf("\n%-8s %10s %10s %10s %10s %10s   %s\n", "network", "mean",
              "stddev", "min", "median", "max", "paper (mean/stddev)");
  const char* paper[] = {"785.3 / 171.5", "978.7 / 137.9"};
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& s = results[i].summary;
    std::printf("%-8s %10.1f %10.1f %10.1f %10.1f %10.1f   %s\n",
                results[i].network_name.c_str(), s.mean, s.stddev, s.min,
                s.median, s.max, paper[i]);
  }

  // Per-phase breakdown straight from the registry: where the round-trip
  // actually went (push leg, token POST, pool queueing, ...).
  std::printf("\nPer-phase latency percentiles "
              "(MetricsRegistry histograms, ms):\n");
  for (const auto& result : results) {
    std::printf("  %s\n", result.network_name.c_str());
    print_phase_table(result.metrics);
  }

  // The trace-derived view: each trial is one distributed trace tree over
  // browser -> server -> GCM -> phone -> server -> browser; critical-path
  // attribution charges every microsecond of the root's duration to
  // exactly one hop (self time = duration minus children's union).
  std::printf("\nCritical-path attribution "
              "(from %d real trace trees per network):\n",
              trials);
  for (const auto& result : results) {
    std::printf("  %s\n", result.network_name.c_str());
    print_critical_path(result, trials);
  }

  // Exemplars: the p99 bucket is not an anonymous number — each bucket
  // keeps the trace id of a real trial that landed there.
  std::printf("\nHistogram exemplars (bucket -> linked trace):\n");
  for (const auto& result : results) {
    std::printf("  %s\n", result.network_name.c_str());
    print_exemplars(result.metrics);
  }

  // CPU hotspots of the run (sampling profiler, collapsed stacks).
  std::printf("\nCPU hotspots (%llu samples, top %zu stacks):\n",
              static_cast<unsigned long long>(
                  obs::Profiler::instance().samples_captured()),
              hotspots.size());
  for (const auto& line : hotspots) {
    std::printf("  %6llu %s\n",
                static_cast<unsigned long long>(line.count),
                line.stack.c_str());
  }
  if (hotspots.empty()) {
    std::printf("  (profiler unsupported on this platform or run too "
                "short to sample)\n");
  }

  // Distribution shape, Fig. 3's scatter rendered as histograms.
  std::printf("\nLatency distribution (100 ms bins):\n");
  for (const auto& result : results) {
    std::printf("  %s\n", result.network_name.c_str());
    constexpr double kBin = 100.0;
    std::map<int, int> bins;
    for (const double ms : result.samples_ms) {
      ++bins[static_cast<int>(ms / kBin)];
    }
    for (const auto& [bin, count] : bins) {
      std::printf("    %5d-%-5d %s %d\n", bin * 100, bin * 100 + 99,
                  std::string(static_cast<std::size_t>(count), '#').c_str(),
                  count);
    }
  }

  // Where the time goes: the calibrated component model (see
  // src/simnet/link.cpp and the server/phone compute configs).
  std::printf("\nComponent budget (calibrated means, ms):\n");
  std::printf("  %-28s %8s %8s\n", "component", "Wifi", "4G");
  std::printf("  %-28s %8.0f %8.0f\n", "server -> rendezvous (dc)", 8.0, 8.0);
  std::printf("  %-28s %8.0f %8.0f\n", "push -> phone (downlink)", 560.0,
              640.0);
  std::printf("  %-28s %8.0f %8.0f\n", "phone token compute", 25.0, 25.0);
  std::printf("  %-28s %8.0f %8.0f\n", "token -> server (uplink)", 177.0,
              291.0);
  std::printf("  %-28s %8.0f %8.0f\n", "server password compute", 15.0, 15.0);
  std::printf("  %-28s %8.0f %8.0f\n", "total (vs paper 785.3 / 978.7)",
              785.0, 979.0);

  std::printf("\nConclusion check: Wifi mean < 4G mean: %s; both < 1.4 s "
              "typical: %s\n",
              results[0].summary.mean < results[1].summary.mean ? "yes"
                                                                : "NO",
              results[0].summary.mean < 1400 &&
                      results[1].summary.mean < 1400
                  ? "yes"
                  : "NO");

  // Machine-readable artifact: per-network summary + full registry
  // snapshot. Everything is virtual-time, so the file is byte-identical
  // across runs with the same seed.
  {
    std::ofstream out("BENCH_fig3_latency.json",
                      std::ios::binary | std::ios::trunc);
    out << "{\n  \"bench\": \"fig3_latency\",\n  \"trials\": " << trials
        << ",\n  \"seed\": " << seed << ",\n  \"networks\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& s = results[i].summary;
      // Tail summary for the regression gate: p99 over the trial samples
      // (nearest-rank), deterministic like the rest of the row.
      std::vector<double> sorted = results[i].samples_ms;
      std::sort(sorted.begin(), sorted.end());
      const double p99 =
          sorted.empty()
              ? 0.0
              : sorted[std::min(sorted.size() - 1,
                                static_cast<std::size_t>(
                                    0.99 * static_cast<double>(sorted.size())))];
      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    "    {\"name\": \"%s\", \"mean_ms\": %.3f, "
                    "\"stddev_ms\": %.3f, \"min_ms\": %.3f, "
                    "\"median_ms\": %.3f, \"p99_ms\": %.3f, "
                    "\"max_ms\": %.3f,\n"
                    "     \"critical_path\": ",
                    results[i].network_name.c_str(), s.mean, s.stddev, s.min,
                    s.median, p99, s.max);
      out << buf << critical_path_json(results[i])
          << ",\n     \"exemplars\": " << exemplars_json(results[i].metrics)
          << ",\n     \"sample_trace\": "
          << embed_trace(results[i].sample_trace_json)
          << ",\n     \"metrics\": " << embed_json(results[i].metrics) << '}'
          << (i + 1 < results.size() ? ",\n" : "\n");
    }
    out << "  ],\n  \"profile\": {\"samples\": "
        << obs::Profiler::instance().samples_captured()
        << ", \"hotspots\": " << hotspots_json(hotspots) << "}\n}\n";
  }
  std::printf("\nWrote BENCH_fig3_latency.json\n");
  return 0;
}
