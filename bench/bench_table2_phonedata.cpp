// Regenerates Table II: the Amnesia application's data at rest — the
// 512-bit Pid and the N = 5000-entry table of 256-bit values.
//
//   ./bench/bench_table2_phonedata [entry_table_size]
#include <cstdio>
#include <cstdlib>

#include "core/entry_table.h"
#include "core/keys.h"
#include "crypto/drbg.h"

using namespace amnesia;

namespace {
std::string elide(const std::string& hex) {
  return "0x" + hex.substr(0, 7) + ". . .";
}
}  // namespace

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5000;

  crypto::ChaChaDrbg rng(1);
  const core::PhoneSecrets kp{core::PhoneId::generate(rng),
                              core::EntryTable::generate(rng, n)};

  std::printf("TABLE II: Application Side Data (N = %zu)\n", n);
  std::printf("  %-6s | %s\n", "Data", "Value");
  std::printf("  -------+------------------\n");
  std::printf("  %-6s | %s\n", "Pid", elide(kp.pid.hex()).c_str());
  for (std::size_t i = 0; i < 3 && i < n; ++i) {
    std::printf("  e%-5zu | %s\n", i + 1,
                elide(kp.entry_table.entry(i).hex()).c_str());
  }
  if (n > 4) std::printf("  %-6s | ...\n", "...");
  if (n > 3) {
    std::printf("  e%-5zu | %s\n", n,
                elide(kp.entry_table.entry(n - 1).hex()).c_str());
  }

  const Bytes backup = kp.serialize();
  std::printf("\n  storage footprint: %zu bytes (Pid 64 B + %zu x 32 B "
              "entries + framing)\n",
              backup.size(), n);
  std::printf("  token space from this table: N^16 = %zu^16\n", n);
  return 0;
}
