// Ablation A2 (DESIGN.md): server worker-pool sizing under load.
//
// The paper's prototype allocates a fixed CherryPy pool of 10 threads and
// notes the server-side hash could bottleneck the system. The real
// bottleneck this ablation exposes is sharper: a password request parks
// its worker for the entire phone round-trip (~800 ms), and the phone's
// /token POST must be served by the SAME pool. If every worker is parked,
// the token that would release them starves behind them in the queue —
// a pool-wide livelock that only the 30 s phone timeout clears. The pool
// must therefore stay strictly larger than the number of concurrently
// waiting generations; the paper's 10 threads support at most 9.
//
// Sweep 1 fixes the offered concurrency and varies the pool: the cliff
// between "pool <= clients" (collapse) and "pool > clients" (healthy).
// Sweep 2 fixes the paper's 10 workers and varies concurrency: throughput
// rises linearly until 9 concurrent clients, then falls off the cliff.
//
//   ./bench/bench_ablation_threads [virtual_seconds]
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <vector>

#include "eval/stats.h"
#include "eval/testbed.h"

using namespace amnesia;

namespace {

struct SweepResult {
  std::uint64_t completed = 0;
  std::uint64_t timed_out = 0;
  double throughput_per_s = 0.0;
  eval::Summary latency_ms;
  std::size_t max_queue_depth = 0;
};

SweepResult run_load(int workers, int clients, double virtual_seconds) {
  eval::TestbedConfig config;
  config.seed = 1000 + static_cast<std::uint64_t>(workers * 100 + clients);
  config.server.workers = workers;
  eval::Testbed bed(config);
  if (!bed.provision("loaduser", "mp").ok() ||
      !bed.add_account("Alice", "mail.google.com").ok()) {
    std::fprintf(stderr, "setup failed\n");
    std::exit(1);
  }

  std::vector<std::unique_ptr<client::Browser>> fleet;
  for (int i = 0; i < clients; ++i) {
    auto browser = bed.make_browser("load-pc-" + std::to_string(i));
    if (!bed.login_from(*browser, "loaduser", "mp").ok()) {
      std::fprintf(stderr, "login failed\n");
      std::exit(1);
    }
    fleet.push_back(std::move(browser));
  }
  bed.server().clear_latencies();

  const Micros deadline = bed.sim().now() + ms_to_us(virtual_seconds * 1000);
  std::uint64_t completed = 0;

  // Closed loop: each browser re-requests the moment its answer (success
  // or failure) arrives, until the deadline.
  std::function<void(client::Browser&)> issue = [&](client::Browser& b) {
    b.request_password("Alice", "mail.google.com",
                       [&](Result<std::string> r) {
                         if (r.ok()) ++completed;
                         if (bed.sim().now() < deadline) issue(b);
                       });
  };
  for (auto& browser : fleet) issue(*browser);
  bed.sim().run_until(deadline);
  bed.sim().run_capped(50'000'000);  // drain in-flight work

  SweepResult result;
  result.completed = completed;
  result.timed_out = bed.server().stats().requests_timed_out;
  result.throughput_per_s = static_cast<double>(completed) / virtual_seconds;
  std::vector<double> latencies;
  for (const Micros us : bed.server().password_latencies()) {
    latencies.push_back(us_to_ms(us));
  }
  result.latency_ms = eval::summarize(std::move(latencies));
  result.max_queue_depth = bed.server().http().pool().max_queue_depth();
  return result;
}

void print_row(const char* key_label, int key, const SweepResult& r,
               bool is_paper) {
  std::printf("%-8d %10llu %10llu %10.2f %12.1f %12zu%s\n", key,
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.timed_out),
              r.throughput_per_s, r.latency_ms.mean, r.max_queue_depth,
              is_paper ? "  <- paper" : "");
  (void)key_label;
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 40.0;

  std::printf("Sweep 1: pool size at 8 concurrent clients "
              "(%.0f s virtual time)\n",
              seconds);
  std::printf("%-8s %10s %10s %10s %12s %12s\n", "workers", "completed",
              "timeouts", "gen/s", "mean ms", "max queue");
  for (const int workers : {2, 4, 8, 9, 10, 16}) {
    print_row("workers", workers, run_load(workers, 8, seconds),
              workers == 10);
  }
  std::printf("  -> pool <= clients livelocks: every worker waits on a "
              "phone token that\n     is stuck behind it in the queue; "
              "only the 30 s timeout clears it.\n\n");

  std::printf("Sweep 2: concurrent clients at the paper's 10 workers\n");
  std::printf("%-8s %10s %10s %10s %12s %12s\n", "clients", "completed",
              "timeouts", "gen/s", "mean ms", "max queue");
  for (const int clients : {1, 2, 4, 8, 9, 10, 12}) {
    print_row("clients", clients, run_load(10, clients, seconds), false);
  }
  std::printf("  -> throughput scales linearly to 9 concurrent "
              "generations (~11/s at\n     ~800 ms each), then collapses: "
              "the 10-thread pool's real capacity is 9.\n");
  return 0;
}
