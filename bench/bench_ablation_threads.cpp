// Ablation A2 (DESIGN.md): server worker-pool sizing under load.
//
// The paper's prototype allocates a fixed CherryPy pool of 10 threads and
// notes the server-side hash could bottleneck the system. The real
// bottleneck this ablation exposes is sharper: a password request parks
// its worker for the entire phone round-trip (~800 ms), and the phone's
// /token POST must be served by the SAME pool. If every worker is parked,
// the token that would release them starves behind them in the queue —
// a pool-wide livelock that only the 30 s phone timeout clears. The pool
// must therefore stay strictly larger than the number of concurrently
// waiting generations; the paper's 10 threads support at most 9.
//
// Sweep 1 fixes the offered concurrency and varies the pool: the cliff
// between "pool <= clients" (collapse) and "pool > clients" (healthy).
// Sweep 2 fixes the paper's 10 workers and varies concurrency: throughput
// rises linearly until 9 concurrent clients, then falls off the cliff.
//
// All per-run numbers are read from the testbed's MetricsRegistry —
// counters (server.passwords_generated, server.requests_timed_out), the
// threadpool.max_queue_depth gauge, and p50/p95/p99 of the
// protocol.round_latency_us histogram — and every run's snapshot lands in
// BENCH_ablation_threads.json, byte-identical for a given seed.
//
//   ./bench/bench_ablation_threads [virtual_seconds]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "eval/testbed.h"
#include "obs/metrics.h"

using namespace amnesia;

namespace {

struct SweepResult {
  std::uint64_t completed = 0;
  std::uint64_t timed_out = 0;
  double throughput_per_s = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  std::int64_t max_queue_depth = 0;
  obs::Snapshot metrics;
};

SweepResult run_load(int workers, int clients, double virtual_seconds) {
  eval::TestbedConfig config;
  config.seed = 1000 + static_cast<std::uint64_t>(workers * 100 + clients);
  config.server.workers = workers;
  eval::Testbed bed(config);
  if (!bed.provision("loaduser", "mp").ok() ||
      !bed.add_account("Alice", "mail.google.com").ok()) {
    std::fprintf(stderr, "setup failed\n");
    std::exit(1);
  }

  std::vector<std::unique_ptr<client::Browser>> fleet;
  for (int i = 0; i < clients; ++i) {
    auto browser = bed.make_browser("load-pc-" + std::to_string(i));
    if (!bed.login_from(*browser, "loaduser", "mp").ok()) {
      std::fprintf(stderr, "login failed\n");
      std::exit(1);
    }
    fleet.push_back(std::move(browser));
  }
  bed.server().clear_latencies();
  // Measure the load phase only: zero the registry after provisioning so
  // the reported counters/histograms cover exactly the closed-loop run.
  bed.server().metrics().reset_values();
  bed.server().metrics().clear_spans();

  const Micros deadline = bed.sim().now() + ms_to_us(virtual_seconds * 1000);

  // Closed loop: each browser re-requests the moment its answer (success
  // or failure) arrives, until the deadline.
  std::function<void(client::Browser&)> issue = [&](client::Browser& b) {
    b.request_password("Alice", "mail.google.com",
                       [&](Result<std::string> r) {
                         (void)r;
                         if (bed.sim().now() < deadline) issue(b);
                       });
  };
  for (auto& browser : fleet) issue(*browser);
  bed.sim().run_until(deadline);
  bed.sim().run_capped(50'000'000);  // drain in-flight work

  SweepResult result;
  result.metrics = bed.server().metrics().snapshot();
  // find(), not operator[]: a fully collapsed run may lack a metric, and
  // inserting a default would perturb the exported snapshot.
  const auto counter = [&](const char* name) -> std::uint64_t {
    const auto it = result.metrics.counters.find(name);
    return it == result.metrics.counters.end() ? 0 : it->second;
  };
  result.completed = counter("server.passwords_generated");
  result.timed_out = counter("server.requests_timed_out");
  result.throughput_per_s =
      static_cast<double>(result.completed) / virtual_seconds;
  const auto hist_it =
      result.metrics.histograms.find("protocol.round_latency_us");
  if (hist_it != result.metrics.histograms.end()) {
    result.p50_ms = us_to_ms(obs::quantile(hist_it->second, 0.50));
    result.p95_ms = us_to_ms(obs::quantile(hist_it->second, 0.95));
    result.p99_ms = us_to_ms(obs::quantile(hist_it->second, 0.99));
  }
  const auto gauge_it =
      result.metrics.gauges.find("threadpool.max_queue_depth");
  if (gauge_it != result.metrics.gauges.end()) {
    result.max_queue_depth = gauge_it->second;
  }
  return result;
}

void print_row(const char* key_label, int key, const SweepResult& r,
               bool is_paper) {
  std::printf("%-8d %10llu %10llu %10.2f %9.1f %9.1f %9.1f %10lld%s\n", key,
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.timed_out),
              r.throughput_per_s, r.p50_ms, r.p95_ms, r.p99_ms,
              static_cast<long long>(r.max_queue_depth),
              is_paper ? "  <- paper" : "");
  (void)key_label;
}

/// to_json() yields a complete document; trim the trailing newline so it
/// embeds as a nested object.
std::string embed_json(const obs::Snapshot& snapshot) {
  std::string json = obs::to_json(snapshot);
  while (!json.empty() && json.back() == '\n') json.pop_back();
  return json;
}

void write_run_json(std::ofstream& out, const char* key_label, int key,
                    const SweepResult& r, bool last) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "    {\"%s\": %d, \"completed\": %llu, \"timed_out\": %llu, "
                "\"throughput_per_s\": %.3f,\n     \"p50_ms\": %.3f, "
                "\"p95_ms\": %.3f, \"p99_ms\": %.3f, "
                "\"max_queue_depth\": %lld,\n     \"metrics\": ",
                key_label, key,
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.timed_out),
                r.throughput_per_s, r.p50_ms, r.p95_ms, r.p99_ms,
                static_cast<long long>(r.max_queue_depth));
  out << buf << embed_json(r.metrics) << '}' << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 40.0;

  std::ofstream json("BENCH_ablation_threads.json",
                     std::ios::binary | std::ios::trunc);
  json << "{\n  \"bench\": \"ablation_threads\",\n  \"virtual_seconds\": "
       << seconds << ",\n  \"sweep_workers\": [\n";

  std::printf("Sweep 1: pool size at 8 concurrent clients "
              "(%.0f s virtual time)\n",
              seconds);
  std::printf("%-8s %10s %10s %10s %9s %9s %9s %10s\n", "workers",
              "completed", "timeouts", "gen/s", "p50 ms", "p95 ms", "p99 ms",
              "max queue");
  const std::vector<int> worker_points = {2, 4, 8, 9, 10, 16};
  for (std::size_t i = 0; i < worker_points.size(); ++i) {
    const int workers = worker_points[i];
    const SweepResult r = run_load(workers, 8, seconds);
    print_row("workers", workers, r, workers == 10);
    write_run_json(json, "workers", workers, r,
                   i + 1 == worker_points.size());
  }
  json << "  ],\n  \"sweep_clients\": [\n";
  std::printf("  -> pool <= clients livelocks: every worker waits on a "
              "phone token that\n     is stuck behind it in the queue; "
              "only the 30 s timeout clears it.\n\n");

  std::printf("Sweep 2: concurrent clients at the paper's 10 workers\n");
  std::printf("%-8s %10s %10s %10s %9s %9s %9s %10s\n", "clients",
              "completed", "timeouts", "gen/s", "p50 ms", "p95 ms", "p99 ms",
              "max queue");
  const std::vector<int> client_points = {1, 2, 4, 8, 9, 10, 12};
  for (std::size_t i = 0; i < client_points.size(); ++i) {
    const int clients = client_points[i];
    const SweepResult r = run_load(10, clients, seconds);
    print_row("clients", clients, r, false);
    write_run_json(json, "clients", clients, r,
                   i + 1 == client_points.size());
  }
  json << "  ]\n}\n";
  std::printf("  -> throughput scales linearly to 9 concurrent "
              "generations (~11/s at\n     ~800 ms each), then collapses: "
              "the 10-thread pool's real capacity is 9.\n");
  std::printf("\nWrote BENCH_ablation_threads.json\n");
  return 0;
}
