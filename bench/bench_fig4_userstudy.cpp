// Regenerates Fig. 4 (a-d) and every statistic of paper section VII from
// the encoded 31-participant dataset.
//
//   ./bench/bench_fig4_userstudy
#include <cstdio>

#include "eval/habits.h"
#include "eval/userstudy.h"

using namespace amnesia::eval;

namespace {

template <typename Enum, std::size_t N>
void print_chart(const char* title, Enum field_tag,
                 Enum Participant::* field) {
  (void)field_tag;
  const auto counts = histogram<Enum, N>(field);
  std::vector<std::string> labels;
  std::vector<int> values;
  for (std::size_t i = 0; i < N; ++i) {
    labels.push_back(to_label(static_cast<Enum>(i)));
    values.push_back(counts[i]);
  }
  std::printf("%s\n", render_bar_chart(title, labels, values).c_str());
}

}  // namespace

int main() {
  std::printf("Fig. 4 — Survey Results (N = 31, paper section VII)\n\n");
  print_chart<ReuseFrequency, 5>("(a) Password Reuse", ReuseFrequency{},
                                 &Participant::reuse);
  print_chart<PasswordLength, 4>("(b) Password Length", PasswordLength{},
                                 &Participant::password_length);
  print_chart<CreationTechnique, 3>("(c) Password Creation Techniques",
                                    CreationTechnique{},
                                    &Participant::technique);
  print_chart<ChangeFrequency, 5>("(d) Password Change Frequency",
                                  ChangeFrequency{},
                                  &Participant::change_frequency);

  const auto demo = demographics();
  std::printf("Demographics (section VII-B)          measured      paper\n");
  std::printf("  participants                        %3d           31\n",
              demo.participants);
  std::printf("  male / female                       %d / %d       21 / 10\n",
              demo.male, demo.female);
  std::printf("  age mean (stddev)                   %.2f (%.2f)  "
              "33.32 (9.92)\n",
              demo.age.mean, demo.age.stddev);
  std::printf("  age range                           %d-%d         20-61\n",
              demo.min_age, demo.max_age);
  const auto hours = histogram<HoursOnline, 4>(&Participant::hours_online);
  std::printf("  hours online 1-4/4-8/8-12/12+       %d/%d/%d/%d     "
              "4/13/8/6\n",
              hours[0], hours[1], hours[2], hours[3]);
  const auto accounts = histogram<AccountCount, 2>(&Participant::accounts);
  std::printf("  accounts <=10 / 11-20               %d/%d         17/14\n\n",
              accounts[0], accounts[1]);

  const auto use = usability();
  std::printf("Usability (section VII-D)             measured      paper\n");
  std::printf("  registration convenient             %d (%.1f%%)    "
              "24 (77.4%%)\n",
              use.registration_convenient,
              100.0 * use.registration_convenient / 31.0);
  std::printf("  adding an account easy              %d (%.1f%%)    "
              "26 (83.8%%)\n",
              use.adding_easy, 100.0 * use.adding_easy / 31.0);
  std::printf("  generating a password easy          %d (%.1f%%)    "
              "26 (83.8%%)\n",
              use.generating_easy, 100.0 * use.generating_easy / 31.0);
  std::printf("  believe Amnesia increases security  %d           27\n\n",
              use.believes_security_increased);

  const auto pref = preference();
  std::printf("Preference (section VII-E)            measured      paper\n");
  std::printf("  PM users preferring Amnesia         %d of %d        "
              "6 of 7\n",
              pref.pm_users_prefer, pref.pm_users);
  std::printf("  non-PM users preferring Amnesia     %d of %d      "
              "14 of 24\n",
              pref.non_pm_users_prefer, pref.non_pm_users);
  std::printf("  total preferring Amnesia            %d of 31      "
              "(paper also states 22/31 — internally inconsistent with its "
              "6+14 breakdown;\n                                      "
              "              the dataset encodes the breakdown, see "
              "EXPERIMENTS.md)\n\n",
              pref.total_prefer);

  // --- Beyond the paper: quantify the strength gap the survey implies.
  const auto habits = score_study_population();
  std::printf("Implied password strength (analysis beyond the paper)\n");
  std::printf("  participants' current passwords     %.1f bits mean "
              "(min %.1f, max %.1f)\n",
              habits.bits.mean, habits.bits.min, habits.bits.max);
  std::printf("  after discounting reported reuse    %.1f effective bits\n",
              habits.reuse_weighted_bits);
  std::printf("  an Amnesia-generated password       %.1f bits "
              "(94^32, section IV-E)\n",
              habits.amnesia_bits);
  std::printf("  -> the 27/31 who believe Amnesia increases security are "
              "right by ~%.0fx in raw bits\n\n",
              habits.amnesia_bits / habits.bits.mean);

  const auto pilot = simulate_pilot_variability(2000, 31, 7);
  std::printf("Pilot-scale caveat (section VII), quantified over %d "
              "synthetic 31-person cohorts:\n",
              pilot.cohorts);
  std::printf("  'prefers Amnesia'    %.1f%% +- %.1f  (range %.0f%%-%.0f%%)\n",
              pilot.prefer_percent.mean, pilot.prefer_percent.stddev,
              pilot.prefer_percent.min, pilot.prefer_percent.max);
  std::printf("  'security increased' %.1f%% +- %.1f  (range %.0f%%-%.0f%%)\n",
              pilot.security_percent.mean, pilot.security_percent.stddev,
              pilot.security_percent.min, pilot.security_percent.max);
  std::printf("  -> headline percentages from a 31-person pilot carry a "
              "~+-8-point sigma.\n");
  return 0;
}
