// Regenerates the section IV-E / III-B3 strength analysis: password
// composition, keyspace sizes, and the selection-bias quantification.
//
//   ./bench/bench_sec4e_strength [samples]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "attacks/guessing.h"
#include "eval/strength.h"

using namespace amnesia;

int main(int argc, char** argv) {
  const std::size_t samples =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

  std::printf("Section IV-E — Generated Password Strength "
              "(%zu sampled passwords)\n\n",
              samples);

  const core::PasswordPolicy default_policy{};
  const auto comp = eval::measure_composition(samples, default_policy);
  const auto expected = attacks::expected_composition(default_policy);
  std::printf("Character composition of a default 32-char password:\n");
  std::printf("  %-12s %10s %10s %10s\n", "category", "measured", "analytic",
              "paper");
  std::printf("  %-12s %10.2f %10.2f %10s\n", "lowercase", comp.mean_lowercase,
              expected.lowercase, "~9");
  std::printf("  %-12s %10.2f %10.2f %10s\n", "uppercase", comp.mean_uppercase,
              expected.uppercase, "~9");
  std::printf("  %-12s %10.2f %10.2f %10s\n", "numerals", comp.mean_digits,
              expected.digits, "~3");
  std::printf("  %-12s %10.2f %10.2f %10s\n", "specials", comp.mean_specials,
              expected.specials, "~11");
  std::printf("  distinct passwords: %zu of %zu (collisions: %zu)\n\n",
              comp.distinct, comp.samples, comp.samples - comp.distinct);

  std::printf("Keyspaces:\n");
  std::printf("  password space 94^32:     %s   (paper: 1.38e63)\n",
              attacks::scientific(
                  attacks::password_space_log10(default_policy))
                  .c_str());
  std::printf("  token space 5000^16:      %s   (paper: 1.53e59)\n",
              attacks::scientific(attacks::token_space_log10(5000)).c_str());
  std::printf("  raw token value 2^256:    %s\n",
              attacks::scientific(attacks::bit_space_log10(256)).c_str());
  std::printf("  offline guessing at 1e12/s exhausts half of 94^32 in "
              "10^%.1f seconds\n\n",
              attacks::crack_seconds_log10(
                  attacks::password_space_log10(default_policy), 1e12));

  std::printf("Uniformity of the template function (mod-94 selection):\n");
  const auto chars = eval::measure_char_frequency(samples / 4, default_policy);
  std::printf("  per-character frequency: min %.5f  max %.5f  "
              "(uniform = %.5f)\n",
              chars.min_frequency, chars.max_frequency,
              chars.expected_frequency);
  std::printf("  chi-squared vs uniform: %.1f on %zu dof\n\n",
              chars.chi_squared, chars.degrees_of_freedom);

  std::printf("Algorithm 1 index selection bias (segment mod N):\n");
  std::printf("  %-8s %-16s %-16s %s\n", "N", "analytic max/min",
              "entropy loss", "note");
  for (const std::size_t n : {1000u, 4096u, 5000u, 10000u, 65536u}) {
    const auto stats = eval::measure_index_frequency(4000, n);
    std::printf("  %-8zu %-16.6f %-13.6f b  %s\n", n,
                stats.analytic_bias_ratio,
                attacks::index_bias_entropy_loss_bits(n),
                n == 5000 ? "<- paper's N (bias negligible)" : "");
  }
  std::printf("\nThe paper's uniformity assumption holds to within %.4f "
              "bits per index at N=5000.\n",
              attacks::index_bias_entropy_loss_bits(5000));
  return 0;
}
