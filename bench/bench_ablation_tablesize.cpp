// Ablation A1 (DESIGN.md): entry-table size N.
//
// The paper fixes N = 5000 without exploring the trade-off. This sweep
// measures, per N: the phone's storage footprint, real token-generation
// time, the token keyspace N^16, and the mod-N selection bias — showing
// why 5000 is a reasonable point (keyspace already astronomically large,
// footprint small, bias negligible) and what moving N does.
//
//   ./bench/bench_ablation_tablesize
#include <chrono>
#include <cstdio>

#include "attacks/guessing.h"
#include "core/generate.h"
#include "core/keys.h"
#include "crypto/drbg.h"

using namespace amnesia;

int main() {
  std::printf("Ablation: entry-table size N (paper: N = 5000)\n\n");
  std::printf("%-8s %12s %14s %14s %12s %14s\n", "N", "K_p bytes",
              "token us", "token space", "bias ratio", "entropy loss");

  crypto::ChaChaDrbg rng(7);
  for (const std::size_t n :
       {16u, 64u, 256u, 1024u, 4096u, 5000u, 16384u, 65536u}) {
    const auto table = core::EntryTable::generate(rng, n);
    const core::PhoneSecrets kp{core::PhoneId::generate(rng), table};
    const std::size_t footprint = kp.serialize().size();

    // Real (wall-clock) token generation time, averaged.
    constexpr int kIters = 2000;
    std::vector<core::Request> requests;
    requests.reserve(kIters);
    for (int i = 0; i < kIters; ++i) {
      requests.emplace_back(rng.bytes(32));
    }
    const auto start = std::chrono::steady_clock::now();
    std::uint8_t sink = 0;
    for (const auto& request : requests) {
      sink ^= core::generate_token(request, table).bytes()[0];
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    const double us_per_token =
        std::chrono::duration<double, std::micro>(elapsed).count() / kIters;

    std::printf("%-8zu %12zu %14.2f %14s %12.6f %11.6f b%s\n", n, footprint,
                us_per_token,
                attacks::scientific(attacks::token_space_log10(n)).c_str(),
                attacks::index_bias_ratio(n),
                attacks::index_bias_entropy_loss_bits(n),
                n == 5000 ? "  <- paper" : "");
    (void)sink;
  }

  std::printf("\nReadout: token time is flat in N (16 fixed lookups + one "
              "SHA-256); storage\ngrows linearly; the keyspace crosses "
              "2^128 (3.4e38) already at N ~ 256.\n");
  return 0;
}
