// Microbenchmarks of the cryptographic substrate and the core protocol
// operations (google-benchmark). Not a paper artifact per se, but the
// numbers ground the latency model: token generation and password
// computation are microseconds — the measured 785/979 ms of Fig. 3 is
// network and rendezvous time, as the paper argues.
//
// Besides the console table, the binary writes BENCH_crypto_primitives.json
// (ns/op, MB/s, items/s per benchmark) into the current directory so later
// PRs can diff crypto performance against this baseline. tools/run_benches.sh
// builds and runs it from the repo root.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/generate.h"
#include "crypto/aead.h"
#include "crypto/chacha20.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"
#include "crypto/pbkdf2.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"
#include "crypto/x25519.h"
#include "securechan/channel.h"

using namespace amnesia;

namespace {

Bytes test_bytes(std::size_t n, std::uint64_t seed = 1) {
  crypto::ChaChaDrbg rng(seed);
  return rng.bytes(n);
}

void BM_Sha256(benchmark::State& state) {
  const Bytes data = test_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Sha512(benchmark::State& state) {
  const Bytes data = test_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha512(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = test_bytes(32);
  const Bytes data = test_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

// The midstate fast path PBKDF2 and the guessing-attack benches sit on:
// one key schedule, then reset()+finish_into() per message.
void BM_HmacSha256Reset(benchmark::State& state) {
  const Bytes key = test_bytes(32);
  std::array<std::uint8_t, 32> digest{};
  crypto::HmacSha256 mac(key);
  for (auto _ : state) {
    mac.reset();
    mac.update(ByteView(digest.data(), digest.size()));
    mac.finish_into(digest.data());
    benchmark::DoNotOptimize(digest.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HmacSha256Reset);

void BM_Pbkdf2_10k(benchmark::State& state) {
  const Bytes password = to_bytes("master password");
  const Bytes salt = test_bytes(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::pbkdf2_hmac_sha256(password, salt, 10'000, 32));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Pbkdf2_10k);

void BM_ChaCha20Xor(benchmark::State& state) {
  const Bytes key = test_bytes(32);
  const Bytes nonce = test_bytes(12, 2);
  Bytes data = test_bytes(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    crypto::ChaCha20 cipher(key, nonce, 1);
    cipher.xor_stream(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20Xor)->Arg(256)->Arg(4096)->Arg(16384);

void BM_AeadSeal(benchmark::State& state) {
  const Bytes key = test_bytes(32);
  const Bytes nonce = test_bytes(12, 2);
  const Bytes aad = test_bytes(16, 3);
  const Bytes msg = test_bytes(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::aead_seal(key, nonce, aad, msg));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AeadSeal)->Arg(256)->Arg(4096);

void BM_AeadOpen(benchmark::State& state) {
  const Bytes key = test_bytes(32);
  const Bytes nonce = test_bytes(12, 2);
  const Bytes aad = test_bytes(16, 3);
  const Bytes msg = test_bytes(static_cast<std::size_t>(state.range(0)), 4);
  const Bytes sealed = crypto::aead_seal(key, nonce, aad, msg);
  Bytes opened;
  for (auto _ : state) {
    if (!crypto::aead_open_into(key, nonce, aad, sealed, opened)) {
      state.SkipWithError("aead_open_into failed");
      break;
    }
    benchmark::DoNotOptimize(opened.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AeadOpen)->Arg(256)->Arg(4096);

// Steady-state secure-channel record throughput: one seal + one open per
// item through the per-channel scratch-buffer path (what SecureClient /
// SecureServer do per request once the channel is warm).
void BM_SecureChannelRecord(benchmark::State& state) {
  crypto::ChaChaDrbg rng(10);
  const Bytes secret = rng.bytes(32);
  const Bytes client_nonce = rng.bytes(16);
  const Bytes server_nonce = rng.bytes(16);
  const auto keys =
      securechan::derive_keys(secret, client_nonce, server_nonce);
  const Bytes payload = rng.bytes(static_cast<std::size_t>(state.range(0)));
  const Bytes aad = rng.bytes(9);
  Bytes sealed, opened;
  std::uint64_t seq = 0;
  for (auto _ : state) {
    securechan::seal_record_into(keys.client_to_server_key,
                                 keys.client_to_server_iv, seq, aad, payload,
                                 sealed);
    if (!securechan::open_record_into(keys.client_to_server_key,
                                      keys.client_to_server_iv, seq, aad,
                                      sealed, opened)) {
      state.SkipWithError("open_record_into failed");
      break;
    }
    ++seq;
    benchmark::DoNotOptimize(opened.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SecureChannelRecord)->Arg(256)->Arg(4096);

void BM_X25519(benchmark::State& state) {
  crypto::ChaChaDrbg rng(5);
  const auto kp = crypto::x25519_generate(rng);
  const auto peer = crypto::x25519_generate(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::x25519(kp.private_key, peer.public_key));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_X25519);

void BM_MakeRequest(benchmark::State& state) {
  crypto::ChaChaDrbg rng(6);
  const core::AccountId account{"Alice", "mail.google.com"};
  const auto seed = core::Seed::generate(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::make_request(account, seed));
  }
}
BENCHMARK(BM_MakeRequest);

void BM_GenerateToken(benchmark::State& state) {
  crypto::ChaChaDrbg rng(7);
  const auto table = core::EntryTable::generate(
      rng, static_cast<std::size_t>(state.range(0)));
  const core::Request request(rng.bytes(32));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::generate_token(request, table));
  }
}
BENCHMARK(BM_GenerateToken)->Arg(5000)->Arg(65536);

void BM_GeneratePassword(benchmark::State& state) {
  crypto::ChaChaDrbg rng(8);
  const core::Token token(rng.bytes(32));
  const auto oid = core::OnlineId::generate(rng);
  const auto seed = core::Seed::generate(rng);
  const core::PasswordPolicy policy{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::generate_password(token, oid, seed, policy));
  }
}
BENCHMARK(BM_GeneratePassword);

void BM_FullOfflinePipeline(benchmark::State& state) {
  crypto::ChaChaDrbg rng(9);
  const core::AccountId account{"Alice", "mail.google.com"};
  const auto seed = core::Seed::generate(rng);
  const auto oid = core::OnlineId::generate(rng);
  const auto table = core::EntryTable::generate(rng, 5000);
  const core::PasswordPolicy policy{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::end_to_end_password(account, seed, oid, table, policy));
  }
}
BENCHMARK(BM_FullOfflinePipeline);

// ---------------------------------------------------------------- artifact

struct ResultRow {
  std::string name;
  std::int64_t iterations = 0;
  double ns_per_op = 0;
  double bytes_per_second = -1;  // < 0: not measured
  double items_per_second = -1;
};

/// Console output as usual, plus capture of every run for the JSON
/// artifact written from main() after the suite completes.
class ArtifactReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      ResultRow row;
      row.name = run.benchmark_name();
      row.iterations = static_cast<std::int64_t>(run.iterations);
      row.ns_per_op = run.iterations > 0
                          ? run.real_accumulated_time /
                                static_cast<double>(run.iterations) * 1e9
                          : 0;
      const auto bytes = run.counters.find("bytes_per_second");
      if (bytes != run.counters.end()) row.bytes_per_second = bytes->second;
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) row.items_per_second = items->second;
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<ResultRow>& rows() const { return rows_; }

 private:
  std::vector<ResultRow> rows_;
};

void write_artifact(const std::vector<ResultRow>& rows, const char* path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << "{\n  \"bench\": \"crypto_primitives\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"iterations\": %lld, "
                  "\"ns_per_op\": %.2f",
                  r.name.c_str(), static_cast<long long>(r.iterations),
                  r.ns_per_op);
    out << buf;
    if (r.bytes_per_second >= 0) {
      std::snprintf(buf, sizeof(buf), ", \"mb_per_s\": %.3f",
                    r.bytes_per_second / (1024.0 * 1024.0));
      out << buf;
    }
    if (r.items_per_second >= 0) {
      std::snprintf(buf, sizeof(buf), ", \"items_per_s\": %.1f",
                    r.items_per_second);
      out << buf;
    }
    out << '}' << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ArtifactReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  const char* path = "BENCH_crypto_primitives.json";
  write_artifact(reporter.rows(), path);
  std::printf("\nWrote %s (%zu benchmarks)\n", path, reporter.rows().size());
  return 0;
}
