// Microbenchmarks of the cryptographic substrate and the core protocol
// operations (google-benchmark). Not a paper artifact per se, but the
// numbers ground the latency model: token generation and password
// computation are microseconds — the measured 785/979 ms of Fig. 3 is
// network and rendezvous time, as the paper argues.
#include <benchmark/benchmark.h>

#include "core/generate.h"
#include "crypto/aead.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"
#include "crypto/pbkdf2.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"
#include "crypto/x25519.h"

using namespace amnesia;

namespace {

Bytes test_bytes(std::size_t n, std::uint64_t seed = 1) {
  crypto::ChaChaDrbg rng(seed);
  return rng.bytes(n);
}

void BM_Sha256(benchmark::State& state) {
  const Bytes data = test_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Sha512(benchmark::State& state) {
  const Bytes data = test_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha512(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = test_bytes(32);
  const Bytes data = test_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_Pbkdf2_10k(benchmark::State& state) {
  const Bytes password = to_bytes("master password");
  const Bytes salt = test_bytes(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::pbkdf2_hmac_sha256(password, salt, 10'000, 32));
  }
}
BENCHMARK(BM_Pbkdf2_10k);

void BM_AeadSeal(benchmark::State& state) {
  const Bytes key = test_bytes(32);
  const Bytes nonce = test_bytes(12, 2);
  const Bytes aad = test_bytes(16, 3);
  const Bytes msg = test_bytes(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::aead_seal(key, nonce, aad, msg));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AeadSeal)->Arg(256)->Arg(4096);

void BM_X25519(benchmark::State& state) {
  crypto::ChaChaDrbg rng(5);
  const auto kp = crypto::x25519_generate(rng);
  const auto peer = crypto::x25519_generate(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::x25519(kp.private_key, peer.public_key));
  }
}
BENCHMARK(BM_X25519);

void BM_MakeRequest(benchmark::State& state) {
  crypto::ChaChaDrbg rng(6);
  const core::AccountId account{"Alice", "mail.google.com"};
  const auto seed = core::Seed::generate(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::make_request(account, seed));
  }
}
BENCHMARK(BM_MakeRequest);

void BM_GenerateToken(benchmark::State& state) {
  crypto::ChaChaDrbg rng(7);
  const auto table = core::EntryTable::generate(
      rng, static_cast<std::size_t>(state.range(0)));
  const core::Request request(rng.bytes(32));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::generate_token(request, table));
  }
}
BENCHMARK(BM_GenerateToken)->Arg(5000)->Arg(65536);

void BM_GeneratePassword(benchmark::State& state) {
  crypto::ChaChaDrbg rng(8);
  const core::Token token(rng.bytes(32));
  const auto oid = core::OnlineId::generate(rng);
  const auto seed = core::Seed::generate(rng);
  const core::PasswordPolicy policy{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::generate_password(token, oid, seed, policy));
  }
}
BENCHMARK(BM_GeneratePassword);

void BM_FullOfflinePipeline(benchmark::State& state) {
  crypto::ChaChaDrbg rng(9);
  const core::AccountId account{"Alice", "mail.google.com"};
  const auto seed = core::Seed::generate(rng);
  const auto oid = core::OnlineId::generate(rng);
  const auto table = core::EntryTable::generate(rng, 5000);
  const core::PasswordPolicy policy{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::end_to_end_password(account, seed, oid, table, policy));
  }
}
BENCHMARK(BM_FullOfflinePipeline);

}  // namespace

BENCHMARK_MAIN();
