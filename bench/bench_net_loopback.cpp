// Loopback throughput/latency for the real TCP transport.
//
// Runs the full Amnesia stack — simulation-hosted servers behind
// server::NetGateway, wire-backed client::Browser over net::TcpTransport —
// on 127.0.0.1 and drives a closed loop at several concurrency levels.
// Two phases:
//
//   login     secure-channel establishment + PBKDF2 verify, no phone; the
//             pure transport + crypto round trip.
//   password  the six-step bilateral generation including the simulated
//             phone confirmation (bridged virtual time), i.e. the
//             end-to-end hot path of the paper.
//
// Each phase runs once per *resumption mode* (argv[3], comma-separated;
// default "cold,resumed,pooled") — the channel-amortization axis:
//
//   cold      every operation forgets its session ticket and resets the
//             channel first: a full X25519 handshake per op (pipeline
//             depth 1; a reset would fail pipelined siblings).
//   resumed   every operation resets the channel but keeps the ticket:
//             one-round-trip PSK resumption per op, zero X25519 after the
//             untimed warmup (depth 1).
//   pooled    raw HTTP clients share one websvc::ConnectionPool; sessions
//             stay established and extra dials resume from the pool's
//             ticket cache (depth 4 — the multiplexed steady state).
//
// Every JSON row records the server-side securechan.handshakes /
// securechan.resumptions deltas for its timed window, so the claim "the
// resumed rows paid zero X25519" is checkable from the artifact itself.
//
// The whole matrix repeats per shard count (argv[2], comma-separated;
// default "1"): N reactors sharing one port via SO_REUSEPORT, each a
// shared-nothing AmnesiaServer, stitched together by server::ShardRouter.
// Every client logs in as its own bench-user-<i>, so requests spread over
// the shards by user hash and the cross-shard mailbox is on the measured
// path. Tickets are sealed under the fleet-wide ticket-key store, so a
// resume may land on any reactor. N=1 is the unsharded baseline.
//
// Simulated link latencies are collapsed to ~10 us and the per-request
// virtual CPU charges zeroed, so the numbers measure the real epoll
// transport and real crypto rather than the calibrated WAN model (that
// model is bench_fig3_latency's job). Writes BENCH_net_loopback.json
// (req/s, p50/p99 latency, bytes/s, handshake/resumption deltas per
// phase x mode x concurrency x shards) to the current directory, or to
// argv[1].
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/browser.h"
#include "crypto/drbg.h"
#include "eval/sharded_testbed.h"
#include "eval/testbed.h"
#include "net/event_loop.h"
#include "net/rpc.h"
#include "net/tcp.h"
#include "server/gateway.h"
#include "websvc/client.h"
#include "websvc/http.h"
#include "websvc/pool.h"

using namespace amnesia;

namespace {

constexpr const char* kMasterPassword = "bench master password";
constexpr const char* kAccountUser = "Alice";
constexpr const char* kAccountDomain = "mail.google.com";
constexpr std::size_t kPipelineDepth = 4;
const std::vector<int> kConcurrency = {1, 2, 4, 8};

std::string bench_user(int i) { return "bench-user-" + std::to_string(i); }

struct BenchClient {
  std::string user;
  std::unique_ptr<net::TcpTransport> dial;
  std::unique_ptr<net::RpcClient> rpc;
  std::unique_ptr<crypto::ChaChaDrbg> rng;
  std::unique_ptr<client::Browser> browser;
};

BenchClient make_client(net::EventLoop& loop, std::uint16_t port,
                        const crypto::X25519Key& server_key,
                        std::string user, std::uint64_t seed) {
  BenchClient c;
  c.user = std::move(user);
  c.dial = std::make_unique<net::TcpTransport>(loop, "127.0.0.1", port);
  c.rpc = std::make_unique<net::RpcClient>(*c.dial, 30'000'000);
  c.rng = std::make_unique<crypto::ChaChaDrbg>(seed);
  c.browser = std::make_unique<client::Browser>(
      c.rpc->wire(), server_key, *c.rng,
      "bench-client-" + std::to_string(seed));
  return c;
}

/// An operation on client slot `ci`; reports success to its callback.
using Op = std::function<void(std::size_t, std::function<void(bool)>)>;

struct PhaseRow {
  std::string phase;
  std::string resumption;  // cold | resumed | pooled
  std::size_t shards = 1;
  int concurrency = 0;
  std::size_t pipeline_depth = 0;
  std::size_t requests = 0;
  std::size_t failures = 0;
  double wall_s = 0;
  double req_per_s = 0;
  Micros p50_us = 0;
  Micros p99_us = 0;
  double bytes_per_s = 0;
  std::uint64_t handshakes = 0;   // securechan.handshakes delta
  std::uint64_t resumptions = 0;  // securechan.resumptions delta
};

Micros percentile(std::vector<Micros>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

std::uint64_t sum_counters(const std::vector<obs::Counter*>& counters) {
  std::uint64_t total = 0;
  for (const obs::Counter* c : counters) total += c->value();
  return total;
}

/// The per-shard counters a phase row reports deltas of.
struct ShardCounters {
  std::vector<obs::Counter*> rx, tx, handshakes, resumptions;
};

/// Closed loop: each of `nclients` slots keeps `depth` requests
/// outstanding until `total` have completed across all slots.
PhaseRow run_phase(net::EventLoop& loop, std::size_t nclients,
                   const std::string& phase, const std::string& mode,
                   std::size_t shards, std::size_t depth, std::size_t total,
                   const Op& op, const ShardCounters& sc) {
  PhaseRow row;
  row.phase = phase;
  row.resumption = mode;
  row.shards = shards;
  row.concurrency = static_cast<int>(nclients);
  row.pipeline_depth = depth;
  row.requests = total;

  std::vector<Micros> latencies;
  latencies.reserve(total);
  std::size_t issued = 0, done = 0;
  std::function<void(std::size_t)> issue = [&](std::size_t ci) {
    if (issued >= total) return;
    ++issued;
    const Micros t0 = loop.clock().now_us();
    op(ci, [&, ci, t0](bool ok) {
      latencies.push_back(loop.clock().now_us() - t0);
      if (!ok) ++row.failures;
      ++done;
      issue(ci);
    });
  };

  const std::uint64_t rx0 = sum_counters(sc.rx), tx0 = sum_counters(sc.tx);
  const std::uint64_t hs0 = sum_counters(sc.handshakes);
  const std::uint64_t res0 = sum_counters(sc.resumptions);
  const Micros start = loop.clock().now_us();
  for (std::size_t ci = 0; ci < nclients; ++ci) {
    for (std::size_t d = 0; d < depth; ++d) issue(ci);
  }
  const Micros deadline = start + 180'000'000;
  while (done < total) {
    if (loop.clock().now_us() >= deadline) {
      std::fprintf(stderr, "FAILED: phase %s/%s stalled (%zu/%zu done)\n",
                   phase.c_str(), mode.c_str(), done, total);
      std::exit(1);
    }
    loop.poll(20'000);
  }
  const Micros wall = loop.clock().now_us() - start;

  row.wall_s = static_cast<double>(wall) / 1e6;
  row.req_per_s = static_cast<double>(total) / row.wall_s;
  std::sort(latencies.begin(), latencies.end());
  row.p50_us = percentile(latencies, 0.50);
  row.p99_us = percentile(latencies, 0.99);
  row.bytes_per_s =
      static_cast<double>((sum_counters(sc.rx) - rx0) +
                          (sum_counters(sc.tx) - tx0)) /
      row.wall_s;
  row.handshakes = sum_counters(sc.handshakes) - hs0;
  row.resumptions = sum_counters(sc.resumptions) - res0;
  return row;
}

/// Hot-counter contention before/after: the registry's Counter used to be
/// one shared atomic — every inc() from the event-loop thread and all
/// workers bounced a single cache line. It is now sharded into
/// cache-line-sized cells (obs::Counter::kCells). This microbench runs the
/// same multithreaded increment storm against both layouts so the JSON
/// records the speedup the net.* / securechan.* hot paths got. The
/// speedup only manifests with real parallel cores: on a single-core
/// host the shared atomic never bounces between caches, so the sharded
/// layout shows only its per-inc overhead — `cores` is recorded so a
/// regression diff can tell the two situations apart.
struct CounterBench {
  int threads = 0;
  unsigned cores = 0;  // hardware_concurrency at run time
  std::uint64_t per_thread = 0;
  double single_atomic_mops = 0;  // "before": one shared atomic
  double sharded_mops = 0;        // "after": obs::Counter
  double speedup = 0;
};

CounterBench run_counter_bench() {
  CounterBench result;
  result.cores = std::thread::hardware_concurrency();
  result.threads =
      static_cast<int>(std::min(8u, std::max(2u, result.cores)));
  result.per_thread = 2'000'000;

  const auto storm = [&](auto&& bump) {
    std::vector<std::thread> workers;
    const auto t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < result.threads; ++t) {
      workers.emplace_back([&] {
        for (std::uint64_t i = 0; i < result.per_thread; ++i) bump();
      });
    }
    for (auto& w : workers) w.join();
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - t0;
    const double total = static_cast<double>(result.threads) *
                         static_cast<double>(result.per_thread);
    return total / wall.count() / 1e6;
  };

  std::atomic<std::uint64_t> single{0};
  result.single_atomic_mops =
      storm([&] { single.fetch_add(1, std::memory_order_relaxed); });

  obs::Counter sharded;
  result.sharded_mops = storm([&] { sharded.inc(); });
  if (sharded.value() !=
      static_cast<std::uint64_t>(result.threads) * result.per_thread) {
    std::fprintf(stderr, "FAILED: sharded counter lost increments\n");
    std::exit(1);
  }
  result.speedup = result.single_atomic_mops > 0
                       ? result.sharded_mops / result.single_atomic_mops
                       : 0;
  return result;
}

void write_json(const char* path, const std::vector<PhaseRow>& rows,
                const CounterBench& counters) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::perror("fopen");
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"net_loopback\",\n");
  std::fprintf(f,
               "  \"transport\": \"tcp 127.0.0.1 (epoll event loop, "
               "TCP_NODELAY, SO_REUSEPORT at shards > 1)\",\n");
  std::fprintf(f,
               "  \"counter_contention\": {\"threads\": %d, \"cores\": %u, "
               "\"increments_per_thread\": %llu, "
               "\"single_atomic_mops\": %.1f, \"sharded_mops\": %.1f, "
               "\"speedup\": %.2f},\n",
               counters.threads, counters.cores,
               static_cast<unsigned long long>(counters.per_thread),
               counters.single_atomic_mops, counters.sharded_mops,
               counters.speedup);
  std::fprintf(f, "  \"phases\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PhaseRow& r = rows[i];
    std::fprintf(f,
                 "    {\"phase\": \"%s\", \"resumption\": \"%s\", "
                 "\"shards\": %zu, \"concurrency\": %d, "
                 "\"pipeline_depth\": %zu, "
                 "\"requests\": %zu, \"failures\": %zu, "
                 "\"wall_s\": %.3f, \"req_per_s\": %.1f, "
                 "\"p50_us\": %lld, \"p99_us\": %lld, "
                 "\"bytes_per_s\": %.0f, "
                 "\"handshakes\": %llu, \"resumptions\": %llu}%s\n",
                 r.phase.c_str(), r.resumption.c_str(), r.shards,
                 r.concurrency, r.pipeline_depth, r.requests, r.failures,
                 r.wall_s, r.req_per_s, static_cast<long long>(r.p50_us),
                 static_cast<long long>(r.p99_us), r.bytes_per_s,
                 static_cast<unsigned long long>(r.handshakes),
                 static_cast<unsigned long long>(r.resumptions),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// Collapses the simulated WAN/WiFi model and virtual CPU charges so the
/// measurement isolates the real transport + real crypto.
eval::TestbedConfig bench_config() {
  eval::TestbedConfig config;
  // Enough workers that concurrency x pipeline password requests (which
  // hold a worker for the whole phone round trip, CherryPy-style) never
  // starve the phone's own /token posts — the transport stays the subject.
  config.server.workers = 64;
  config.server.mp_hash.iterations = 1'000;
  config.server.token_compute_mean_ms = 0.0;
  config.server.token_compute_stddev_ms = 0.0;
  config.server.light_compute_ms = 0.0;
  config.phone.compute_mean_ms = 0.0;
  config.phone.compute_stddev_ms = 0.0;
  return config;
}

void flatten_links(eval::Testbed& bed) {
  simnet::LinkProfile fast;
  fast.name = "near-zero";
  fast.base_latency_ms = 0.01;
  fast.jitter_ms = 0.0;
  fast.min_latency_ms = 0.005;
  fast.bandwidth_mbps = 40'000.0;
  fast.loss_probability = 0.0;
  bed.net().set_default_link(fast);
  bed.net().set_duplex_link("amnesia-server", "gcm", fast, fast);
  bed.net().set_duplex_link("gcm", "phone", fast, fast);
  bed.net().set_duplex_link("phone", "amnesia-server", fast, fast);
  bed.net().set_duplex_link("phone", "cloud", fast, fast);
}

std::vector<std::string> parse_csv(const char* arg) {
  std::vector<std::string> items;
  std::string token;
  for (const char* p = arg;; ++p) {
    if (*p != '\0' && *p != ',') {
      token += *p;
      continue;
    }
    if (!token.empty() &&
        std::find(items.begin(), items.end(), token) == items.end()) {
      items.push_back(token);
    }
    token.clear();
    if (*p == '\0') break;
  }
  return items;
}

std::vector<std::size_t> parse_shard_counts(const char* arg) {
  std::vector<std::size_t> counts;
  for (const std::string& token : parse_csv(arg)) {
    const long n = std::strtol(token.c_str(), nullptr, 10);
    if (n >= 1 && std::find(counts.begin(), counts.end(),
                            static_cast<std::size_t>(n)) == counts.end()) {
      counts.push_back(static_cast<std::size_t>(n));
    }
  }
  if (counts.empty()) counts.push_back(1);
  return counts;
}

void print_row(const PhaseRow& r) {
  std::printf("%-10s %-8s %6zu %5d %9zu %9.1f %10lld %10lld %6llu %6llu\n",
              r.phase.c_str(), r.resumption.c_str(), r.shards, r.concurrency,
              r.requests, r.req_per_s, static_cast<long long>(r.p50_us),
              static_cast<long long>(r.p99_us),
              static_cast<unsigned long long>(r.handshakes),
              static_cast<unsigned long long>(r.resumptions));
}

bool check_row(const PhaseRow& r) {
  if (r.failures != 0) {
    std::fprintf(stderr,
                 "FAILED: %zu/%zu %s/%s requests failed at "
                 "concurrency %d, shards %zu\n",
                 r.failures, r.requests, r.phase.c_str(),
                 r.resumption.c_str(), r.concurrency, r.shards);
    return false;
  }
  // The artifact must prove the amortization claim, not just assert it.
  if (r.resumption == "resumed" && r.handshakes != 0) {
    std::fprintf(stderr,
                 "FAILED: resumed %s row paid %llu full handshakes at "
                 "concurrency %d, shards %zu\n",
                 r.phase.c_str(),
                 static_cast<unsigned long long>(r.handshakes),
                 r.concurrency, r.shards);
    return false;
  }
  return true;
}

/// One untimed login per browser client: establishes the channel and
/// caches the first session ticket, so the timed cold/resumed windows
/// start from identical, fully-warmed state.
void warm_up_browsers(net::EventLoop& loop,
                      std::vector<BenchClient>& clients) {
  std::size_t done = 0;
  for (BenchClient& c : clients) {
    c.browser->login(c.user, kMasterPassword, [&](Status s) {
      if (!s.ok()) {
        std::fprintf(stderr, "FAILED: warmup login: %s\n",
                     s.message().c_str());
        std::exit(1);
      }
      ++done;
    });
  }
  const Micros deadline = loop.clock().now_us() + 60'000'000;
  while (done < clients.size()) {
    if (loop.clock().now_us() >= deadline) {
      std::fprintf(stderr, "FAILED: warmup stalled\n");
      std::exit(1);
    }
    loop.poll(20'000);
  }
}

/// cold / resumed: per-browser-client phases where every timed operation
/// re-establishes the secure channel (full handshake vs ticket resume).
void run_browser_mode(net::EventLoop& loop, eval::ShardedTcpTestbed& st,
                      const std::string& mode, int conc,
                      const ShardCounters& sc, std::vector<PhaseRow>& rows,
                      std::uint64_t& next_seed) {
  const bool cold = mode == "cold";
  std::vector<BenchClient> clients;
  for (int i = 0; i < conc; ++i) {
    clients.push_back(make_client(loop, st.port(), st.public_key(),
                                  bench_user(i), next_seed++));
  }
  warm_up_browsers(loop, clients);

  // Depth 1: a reset per operation would fail pipelined siblings, and the
  // point is the per-establishment cost anyway.
  const Op login_op = [&clients, cold](std::size_t ci,
                                       std::function<void(bool)> cb) {
    BenchClient& c = clients[ci];
    if (cold) c.browser->channel().forget_ticket();
    c.browser->channel().reset();
    c.browser->login(c.user, kMasterPassword,
                     [cb = std::move(cb)](Status s) { cb(s.ok()); });
  };
  const Op password_op = [&clients, cold](std::size_t ci,
                                          std::function<void(bool)> cb) {
    BenchClient& c = clients[ci];
    if (cold) c.browser->channel().forget_ticket();
    c.browser->channel().reset();
    c.browser->request_password(
        kAccountUser, kAccountDomain,
        [cb = std::move(cb)](Result<std::string> r) { cb(r.ok()); });
  };

  PhaseRow login_row =
      run_phase(loop, clients.size(), "login", mode, st.shards(), 1,
                static_cast<std::size_t>(conc) * 60, login_op, sc);
  PhaseRow password_row =
      run_phase(loop, clients.size(), "password", mode, st.shards(), 1,
                static_cast<std::size_t>(conc) * 25, password_op, sc);

  for (const PhaseRow& r : {login_row, password_row}) {
    print_row(r);
    if (!check_row(r)) std::exit(1);
  }
  rows.push_back(login_row);
  rows.push_back(password_row);

  for (BenchClient& c : clients) c.rpc->close();
  for (int i = 0; i < 10; ++i) loop.poll(1'000);
}

/// pooled: raw HTTP clients (one cookie jar per user) multiplexed over a
/// single bounded ConnectionPool; extra dials resume from the pool's
/// shared ticket cache.
void run_pooled_mode(net::EventLoop& loop, eval::ShardedTcpTestbed& st,
                     int conc, const ShardCounters& sc,
                     std::vector<PhaseRow>& rows, std::uint64_t& next_seed) {
  crypto::ChaChaDrbg rng(next_seed++);
  websvc::ConnectionPoolConfig pc;
  pc.max_connections = static_cast<std::size_t>(conc);
  websvc::ConnectionPool pool(loop, "127.0.0.1", st.port(), st.public_key(),
                              rng, pc);

  struct PoolClient {
    std::string user;
    std::string label;
    websvc::HttpClient http;
  };
  std::vector<std::unique_ptr<PoolClient>> clients;
  for (int i = 0; i < conc; ++i) {
    clients.push_back(std::unique_ptr<PoolClient>(new PoolClient{
        bench_user(i), "bench-pool-" + std::to_string(i),
        websvc::HttpClient(pool.transport())}));
  }

  // Untimed warmup: every user logs in once — fills each cookie jar and
  // seeds the pool's ticket cache with the first connection's ticket.
  std::size_t warmed = 0;
  for (auto& c : clients) {
    c->http.post_form("/login",
                      {{"user", c->user}, {"master_password", kMasterPassword}},
                      [&](Result<websvc::Response> r) {
                        if (!r.ok() || r.value().status != 200) {
                          std::fprintf(stderr, "FAILED: pooled warmup login\n");
                          std::exit(1);
                        }
                        ++warmed;
                      });
  }
  const Micros deadline = loop.clock().now_us() + 60'000'000;
  while (warmed < clients.size()) {
    if (loop.clock().now_us() >= deadline) {
      std::fprintf(stderr, "FAILED: pooled warmup stalled\n");
      std::exit(1);
    }
    loop.poll(20'000);
  }

  const Op login_op = [&clients](std::size_t ci,
                                 std::function<void(bool)> cb) {
    PoolClient& c = *clients[ci];
    c.http.post_form(
        "/login", {{"user", c.user}, {"master_password", kMasterPassword}},
        [cb = std::move(cb)](Result<websvc::Response> r) {
          cb(r.ok() && r.value().status == 200);
        });
  };
  const Op password_op = [&clients](std::size_t ci,
                                    std::function<void(bool)> cb) {
    PoolClient& c = *clients[ci];
    websvc::Request req;
    req.method = websvc::Method::kPost;
    req.path = "/password/request";
    req.headers["Content-Type"] = "application/x-www-form-urlencoded";
    req.headers["X-Origin-IP"] = c.label;
    req.body = websvc::form_encode(
        {{"username", kAccountUser}, {"domain", kAccountDomain}});
    c.http.send(std::move(req),
                [cb = std::move(cb)](Result<websvc::Response> r) {
                  cb(r.ok() && r.value().status == 200 &&
                     r.value().form().count("password") > 0);
                });
  };

  PhaseRow login_row =
      run_phase(loop, clients.size(), "login", "pooled", st.shards(),
                kPipelineDepth, static_cast<std::size_t>(conc) * 60,
                login_op, sc);
  PhaseRow password_row =
      run_phase(loop, clients.size(), "password", "pooled", st.shards(),
                kPipelineDepth, static_cast<std::size_t>(conc) * 25,
                password_op, sc);

  for (const PhaseRow& r : {login_row, password_row}) {
    print_row(r);
    if (!check_row(r)) std::exit(1);
  }
  rows.push_back(login_row);
  rows.push_back(password_row);
  // The pool's connections close with it; drain before the next level.
}

/// One full mode x concurrency sweep against an N-shard deployment.
int run_shard_matrix(std::size_t shards,
                     const std::vector<std::string>& modes,
                     std::vector<PhaseRow>& rows, std::uint64_t& next_seed) {
  eval::ShardedTcpConfig sc_config;
  sc_config.shards = shards;
  sc_config.seed = 1;
  sc_config.base = bench_config();
  eval::ShardedTcpTestbed st(sc_config);

  const int max_conc = *std::max_element(kConcurrency.begin(),
                                         kConcurrency.end());
  for (std::size_t k = 0; k < st.shards(); ++k) flatten_links(st.bed(k));
  // One user per client slot, provisioned on its owner bed while the
  // deployment is still single-threaded; each then pins one account.
  for (int i = 0; i < max_conc; ++i) {
    const std::string user = bench_user(i);
    if (Status s = st.provision(user, kMasterPassword); !s.ok()) {
      std::fprintf(stderr, "FAILED: provision %s: %s\n", user.c_str(),
                   s.message().c_str());
      return 1;
    }
    eval::Testbed& owner = st.bed(st.owner_of(user));
    if (Status s = owner.add_account(kAccountUser, kAccountDomain); !s.ok()) {
      std::fprintf(stderr, "FAILED: add_account %s: %s\n", user.c_str(),
                   s.message().c_str());
      return 1;
    }
  }
  st.start();

  ShardCounters sc;
  for (std::size_t k = 0; k < st.shards(); ++k) {
    obs::MetricsRegistry& m = st.bed(k).server().metrics();
    sc.rx.push_back(&m.counter("net.bytes_rx"));
    sc.tx.push_back(&m.counter("net.bytes_tx"));
    sc.handshakes.push_back(&m.counter("securechan.handshakes"));
    sc.resumptions.push_back(&m.counter("securechan.resumptions"));
  }

  net::EventLoop loop;
  for (const int conc : kConcurrency) {
    for (const std::string& mode : modes) {
      if (mode == "pooled") {
        run_pooled_mode(loop, st, conc, sc, rows, next_seed);
      } else if (mode == "cold" || mode == "resumed") {
        run_browser_mode(loop, st, mode, conc, sc, rows, next_seed);
      } else {
        std::fprintf(stderr, "FAILED: unknown resumption mode '%s'\n",
                     mode.c_str());
        return 1;
      }
      for (int i = 0; i < 10; ++i) loop.poll(1'000);
    }
  }
  st.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_net_loopback.json";
  const std::vector<std::size_t> shard_counts =
      parse_shard_counts(argc > 2 ? argv[2] : "1");
  std::vector<std::string> modes =
      parse_csv(argc > 3 ? argv[3] : "cold,resumed,pooled");
  if (modes.empty()) modes = {"cold", "resumed", "pooled"};

  std::vector<PhaseRow> rows;
  std::uint64_t next_seed = 1;
  std::printf("%-10s %-8s %6s %5s %9s %9s %10s %10s %6s %6s\n", "phase",
              "resume", "shards", "conc", "reqs", "req/s", "p50_us",
              "p99_us", "hs", "res");
  for (const std::size_t shards : shard_counts) {
    if (run_shard_matrix(shards, modes, rows, next_seed) != 0) return 1;
  }

  // Counter layout before/after (single shared atomic vs sharded cells).
  const CounterBench counters = run_counter_bench();
  std::printf("counter inc() contention, %d threads on %u core(s): "
              "single-atomic %.1f Mops/s -> sharded %.1f Mops/s (%.2fx)\n",
              counters.threads, counters.cores, counters.single_atomic_mops,
              counters.sharded_mops, counters.speedup);
  if (counters.cores < 2) {
    std::printf("  (single-core host: the shared atomic cannot bounce "
                "between caches, so only the sharded layout's per-inc "
                "overhead is visible)\n");
  }

  write_json(out_path, rows, counters);
  std::printf("wrote %s\n", out_path);
  return 0;
}
