// Loopback throughput/latency for the real TCP transport.
//
// Runs the full Amnesia stack — simulation-hosted server behind
// server::NetGateway, wire-backed client::Browser over net::TcpTransport —
// on 127.0.0.1 and drives a closed loop at several concurrency levels
// (one TCP connection per concurrent client, ~4 pipelined requests each).
// Two phases:
//
//   login     secure-channel handshake + PBKDF2 verify, no phone; the
//             pure transport + crypto round trip.
//   password  the six-step bilateral generation including the simulated
//             phone confirmation (bridged virtual time), i.e. the
//             end-to-end hot path of the paper.
//
// Simulated link latencies are collapsed to ~10 us and the per-request
// virtual CPU charges zeroed, so the numbers measure the real epoll
// transport and real crypto rather than the calibrated WAN model (that
// model is bench_fig3_latency's job). Writes BENCH_net_loopback.json
// (req/s, p50/p99 latency, bytes/s per phase x concurrency) to the
// current directory, or to argv[1].
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/browser.h"
#include "crypto/drbg.h"
#include "eval/testbed.h"
#include "net/event_loop.h"
#include "net/rpc.h"
#include "net/tcp.h"
#include "server/gateway.h"

using namespace amnesia;

namespace {

constexpr const char* kUser = "alice";
constexpr const char* kMasterPassword = "bench master password";
constexpr const char* kAccountUser = "Alice";
constexpr const char* kAccountDomain = "mail.google.com";
constexpr std::size_t kPipelineDepth = 4;
const std::vector<int> kConcurrency = {1, 2, 4, 8};

struct BenchClient {
  std::unique_ptr<net::TcpTransport> dial;
  std::unique_ptr<net::RpcClient> rpc;
  std::unique_ptr<crypto::ChaChaDrbg> rng;
  std::unique_ptr<client::Browser> browser;
};

BenchClient make_client(net::EventLoop& loop, std::uint16_t port,
                        const crypto::X25519Key& server_key,
                        std::uint64_t seed) {
  BenchClient c;
  c.dial = std::make_unique<net::TcpTransport>(loop, "127.0.0.1", port);
  c.rpc = std::make_unique<net::RpcClient>(*c.dial, 30'000'000);
  c.rng = std::make_unique<crypto::ChaChaDrbg>(seed);
  c.browser = std::make_unique<client::Browser>(
      c.rpc->wire(), server_key, *c.rng,
      "bench-client-" + std::to_string(seed));
  return c;
}

using Op = std::function<void(client::Browser&, std::function<void(bool)>)>;

struct PhaseRow {
  std::string phase;
  int concurrency = 0;
  std::size_t requests = 0;
  std::size_t failures = 0;
  double wall_s = 0;
  double req_per_s = 0;
  Micros p50_us = 0;
  Micros p99_us = 0;
  double bytes_per_s = 0;
};

Micros percentile(std::vector<Micros>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Closed loop: each client keeps `depth` requests outstanding until
/// `total` have completed across all clients.
PhaseRow run_phase(net::EventLoop& loop, std::vector<BenchClient>& clients,
                   const std::string& phase, std::size_t total, const Op& op,
                   obs::Counter& rx, obs::Counter& tx) {
  PhaseRow row;
  row.phase = phase;
  row.concurrency = static_cast<int>(clients.size());
  row.requests = total;

  std::vector<Micros> latencies;
  latencies.reserve(total);
  std::size_t issued = 0, done = 0;
  std::function<void(std::size_t)> issue = [&](std::size_t ci) {
    if (issued >= total) return;
    ++issued;
    const Micros t0 = loop.clock().now_us();
    op(*clients[ci].browser, [&, ci, t0](bool ok) {
      latencies.push_back(loop.clock().now_us() - t0);
      if (!ok) ++row.failures;
      ++done;
      issue(ci);
    });
  };

  const std::uint64_t rx0 = rx.value(), tx0 = tx.value();
  const Micros start = loop.clock().now_us();
  for (std::size_t ci = 0; ci < clients.size(); ++ci) {
    for (std::size_t d = 0; d < kPipelineDepth; ++d) issue(ci);
  }
  const Micros deadline = start + 180'000'000;
  while (done < total) {
    if (loop.clock().now_us() >= deadline) {
      std::fprintf(stderr, "FAILED: phase %s stalled (%zu/%zu done)\n",
                   phase.c_str(), done, total);
      std::exit(1);
    }
    loop.poll(20'000);
  }
  const Micros wall = loop.clock().now_us() - start;

  row.wall_s = static_cast<double>(wall) / 1e6;
  row.req_per_s = static_cast<double>(total) / row.wall_s;
  std::sort(latencies.begin(), latencies.end());
  row.p50_us = percentile(latencies, 0.50);
  row.p99_us = percentile(latencies, 0.99);
  row.bytes_per_s =
      static_cast<double>((rx.value() - rx0) + (tx.value() - tx0)) /
      row.wall_s;
  return row;
}

/// Hot-counter contention before/after: the registry's Counter used to be
/// one shared atomic — every inc() from the event-loop thread and all
/// workers bounced a single cache line. It is now sharded into
/// cache-line-sized cells (obs::Counter::kCells). This microbench runs the
/// same multithreaded increment storm against both layouts so the JSON
/// records the speedup the net.* / securechan.* hot paths got. The
/// speedup only manifests with real parallel cores: on a single-core
/// host the shared atomic never bounces between caches, so the sharded
/// layout shows only its per-inc overhead — `cores` is recorded so a
/// regression diff can tell the two situations apart.
struct CounterBench {
  int threads = 0;
  unsigned cores = 0;  // hardware_concurrency at run time
  std::uint64_t per_thread = 0;
  double single_atomic_mops = 0;  // "before": one shared atomic
  double sharded_mops = 0;        // "after": obs::Counter
  double speedup = 0;
};

CounterBench run_counter_bench() {
  CounterBench result;
  result.cores = std::thread::hardware_concurrency();
  result.threads =
      static_cast<int>(std::min(8u, std::max(2u, result.cores)));
  result.per_thread = 2'000'000;

  const auto storm = [&](auto&& bump) {
    std::vector<std::thread> workers;
    const auto t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < result.threads; ++t) {
      workers.emplace_back([&] {
        for (std::uint64_t i = 0; i < result.per_thread; ++i) bump();
      });
    }
    for (auto& w : workers) w.join();
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - t0;
    const double total = static_cast<double>(result.threads) *
                         static_cast<double>(result.per_thread);
    return total / wall.count() / 1e6;
  };

  std::atomic<std::uint64_t> single{0};
  result.single_atomic_mops =
      storm([&] { single.fetch_add(1, std::memory_order_relaxed); });

  obs::Counter sharded;
  result.sharded_mops = storm([&] { sharded.inc(); });
  if (sharded.value() !=
      static_cast<std::uint64_t>(result.threads) * result.per_thread) {
    std::fprintf(stderr, "FAILED: sharded counter lost increments\n");
    std::exit(1);
  }
  result.speedup = result.single_atomic_mops > 0
                       ? result.sharded_mops / result.single_atomic_mops
                       : 0;
  return result;
}

void write_json(const char* path, const std::vector<PhaseRow>& rows,
                const CounterBench& counters) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::perror("fopen");
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"net_loopback\",\n");
  std::fprintf(f,
               "  \"transport\": \"tcp 127.0.0.1 (epoll event loop, "
               "TCP_NODELAY)\",\n");
  std::fprintf(f, "  \"pipeline_depth\": %zu,\n", kPipelineDepth);
  std::fprintf(f,
               "  \"counter_contention\": {\"threads\": %d, \"cores\": %u, "
               "\"increments_per_thread\": %llu, "
               "\"single_atomic_mops\": %.1f, \"sharded_mops\": %.1f, "
               "\"speedup\": %.2f},\n",
               counters.threads, counters.cores,
               static_cast<unsigned long long>(counters.per_thread),
               counters.single_atomic_mops, counters.sharded_mops,
               counters.speedup);
  std::fprintf(f, "  \"phases\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PhaseRow& r = rows[i];
    std::fprintf(f,
                 "    {\"phase\": \"%s\", \"concurrency\": %d, "
                 "\"requests\": %zu, \"failures\": %zu, "
                 "\"wall_s\": %.3f, \"req_per_s\": %.1f, "
                 "\"p50_us\": %lld, \"p99_us\": %lld, "
                 "\"bytes_per_s\": %.0f}%s\n",
                 r.phase.c_str(), r.concurrency, r.requests, r.failures,
                 r.wall_s, r.req_per_s, static_cast<long long>(r.p50_us),
                 static_cast<long long>(r.p99_us), r.bytes_per_s,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_net_loopback.json";

  // Collapse the simulated WAN/WiFi model and virtual CPU charges so the
  // measurement isolates the real transport + real crypto.
  eval::TestbedConfig config;
  // Enough workers that concurrency x pipeline password requests (which
  // hold a worker for the whole phone round trip, CherryPy-style) never
  // starve the phone's own /token posts — the transport stays the subject.
  config.server.workers = 64;
  config.server.mp_hash.iterations = 1'000;
  config.server.token_compute_mean_ms = 0.0;
  config.server.token_compute_stddev_ms = 0.0;
  config.server.light_compute_ms = 0.0;
  config.phone.compute_mean_ms = 0.0;
  config.phone.compute_stddev_ms = 0.0;
  eval::Testbed bed(config);

  simnet::LinkProfile fast;
  fast.name = "near-zero";
  fast.base_latency_ms = 0.01;
  fast.jitter_ms = 0.0;
  fast.min_latency_ms = 0.005;
  fast.bandwidth_mbps = 40'000.0;
  fast.loss_probability = 0.0;
  bed.net().set_default_link(fast);
  bed.net().set_duplex_link("amnesia-server", "gcm", fast, fast);
  bed.net().set_duplex_link("gcm", "phone", fast, fast);
  bed.net().set_duplex_link("phone", "amnesia-server", fast, fast);
  bed.net().set_duplex_link("phone", "cloud", fast, fast);

  if (Status s = bed.provision(kUser, kMasterPassword); !s.ok()) {
    std::fprintf(stderr, "FAILED: provision: %s\n", s.message().c_str());
    return 1;
  }
  if (Status s = bed.add_account(kAccountUser, kAccountDomain); !s.ok()) {
    std::fprintf(stderr, "FAILED: add_account: %s\n", s.message().c_str());
    return 1;
  }

  net::EventLoop loop;
  net::TcpTransport secure_tr(loop, "127.0.0.1", 0);
  secure_tr.set_metrics(&bed.server().metrics());
  server::NetGateway gateway(secure_tr, nullptr, bed.server());
  obs::Counter& rx = bed.server().metrics().counter("net.bytes_rx");
  obs::Counter& tx = bed.server().metrics().counter("net.bytes_tx");

  const Op login_op = [](client::Browser& b, std::function<void(bool)> cb) {
    b.login(kUser, kMasterPassword,
            [cb = std::move(cb)](Status s) { cb(s.ok()); });
  };
  const Op password_op = [](client::Browser& b,
                            std::function<void(bool)> cb) {
    b.request_password(
        kAccountUser, kAccountDomain,
        [cb = std::move(cb)](Result<std::string> r) { cb(r.ok()); });
  };

  std::vector<PhaseRow> rows;
  std::uint64_t next_seed = 1;
  std::printf("%-10s %5s %9s %9s %10s %10s %12s\n", "phase", "conc", "reqs",
              "req/s", "p50_us", "p99_us", "bytes/s");
  for (const int conc : kConcurrency) {
    std::vector<BenchClient> clients;
    for (int i = 0; i < conc; ++i) {
      clients.push_back(make_client(loop, secure_tr.local_port(),
                                    bed.server().public_key(), next_seed++));
    }

    // Timed phase 1: login (handshake + PBKDF2, no phone round trip).
    PhaseRow login_row = run_phase(loop, clients, "login",
                                   static_cast<std::size_t>(conc) * 60,
                                   login_op, rx, tx);

    // Timed phase 2: bilateral password generation (phone confirms every
    // request; sessions already established by phase 1).
    PhaseRow password_row = run_phase(loop, clients, "password",
                                      static_cast<std::size_t>(conc) * 25,
                                      password_op, rx, tx);

    for (const PhaseRow& r : {login_row, password_row}) {
      std::printf("%-10s %5d %9zu %9.1f %10lld %10lld %12.0f\n",
                  r.phase.c_str(), r.concurrency, r.requests, r.req_per_s,
                  static_cast<long long>(r.p50_us),
                  static_cast<long long>(r.p99_us), r.bytes_per_s);
      if (r.failures != 0) {
        std::fprintf(stderr, "FAILED: %zu/%zu %s requests failed at "
                     "concurrency %d\n",
                     r.failures, r.requests, r.phase.c_str(), r.concurrency);
        return 1;
      }
    }
    rows.push_back(login_row);
    rows.push_back(password_row);

    for (BenchClient& c : clients) c.rpc->close();
    // Drain the closed connections before the next level's accepts.
    for (int i = 0; i < 10; ++i) loop.poll(1'000);
  }

  // Counter layout before/after (single shared atomic vs sharded cells).
  const CounterBench counters = run_counter_bench();
  std::printf("counter inc() contention, %d threads on %u core(s): "
              "single-atomic %.1f Mops/s -> sharded %.1f Mops/s (%.2fx)\n",
              counters.threads, counters.cores, counters.single_atomic_mops,
              counters.sharded_mops, counters.speedup);
  if (counters.cores < 2) {
    std::printf("  (single-core host: the shared atomic cannot bounce "
                "between caches, so only the sharded layout's per-inc "
                "overhead is visible)\n");
  }

  write_json(out_path, rows, counters);
  std::printf("wrote %s\n", out_path);
  return 0;
}
