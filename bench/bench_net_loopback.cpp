// Loopback throughput/latency for the real TCP transport.
//
// Runs the full Amnesia stack — simulation-hosted servers behind
// server::NetGateway, wire-backed client::Browser over net::TcpTransport —
// on 127.0.0.1 and drives a closed loop at several concurrency levels
// (one TCP connection per concurrent client, ~4 pipelined requests each).
// Two phases:
//
//   login     secure-channel handshake + PBKDF2 verify, no phone; the
//             pure transport + crypto round trip.
//   password  the six-step bilateral generation including the simulated
//             phone confirmation (bridged virtual time), i.e. the
//             end-to-end hot path of the paper.
//
// The whole matrix repeats per shard count (argv[2], comma-separated;
// default "1"): N reactors sharing one port via SO_REUSEPORT, each a
// shared-nothing AmnesiaServer, stitched together by server::ShardRouter.
// Every client logs in as its own bench-user-<i>, so requests spread over
// the shards by user hash and the cross-shard mailbox is on the measured
// path. Each JSON phase row carries a "shards" field; N=1 is the
// unsharded baseline.
//
// Simulated link latencies are collapsed to ~10 us and the per-request
// virtual CPU charges zeroed, so the numbers measure the real epoll
// transport and real crypto rather than the calibrated WAN model (that
// model is bench_fig3_latency's job). Writes BENCH_net_loopback.json
// (req/s, p50/p99 latency, bytes/s per phase x concurrency x shards) to
// the current directory, or to argv[1].
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/browser.h"
#include "crypto/drbg.h"
#include "eval/sharded_testbed.h"
#include "eval/testbed.h"
#include "net/event_loop.h"
#include "net/rpc.h"
#include "net/tcp.h"
#include "server/gateway.h"

using namespace amnesia;

namespace {

constexpr const char* kMasterPassword = "bench master password";
constexpr const char* kAccountUser = "Alice";
constexpr const char* kAccountDomain = "mail.google.com";
constexpr std::size_t kPipelineDepth = 4;
const std::vector<int> kConcurrency = {1, 2, 4, 8};

std::string bench_user(int i) { return "bench-user-" + std::to_string(i); }

struct BenchClient {
  std::string user;
  std::unique_ptr<net::TcpTransport> dial;
  std::unique_ptr<net::RpcClient> rpc;
  std::unique_ptr<crypto::ChaChaDrbg> rng;
  std::unique_ptr<client::Browser> browser;
};

BenchClient make_client(net::EventLoop& loop, std::uint16_t port,
                        const crypto::X25519Key& server_key,
                        std::string user, std::uint64_t seed) {
  BenchClient c;
  c.user = std::move(user);
  c.dial = std::make_unique<net::TcpTransport>(loop, "127.0.0.1", port);
  c.rpc = std::make_unique<net::RpcClient>(*c.dial, 30'000'000);
  c.rng = std::make_unique<crypto::ChaChaDrbg>(seed);
  c.browser = std::make_unique<client::Browser>(
      c.rpc->wire(), server_key, *c.rng,
      "bench-client-" + std::to_string(seed));
  return c;
}

using Op = std::function<void(BenchClient&, std::function<void(bool)>)>;

struct PhaseRow {
  std::string phase;
  std::size_t shards = 1;
  int concurrency = 0;
  std::size_t requests = 0;
  std::size_t failures = 0;
  double wall_s = 0;
  double req_per_s = 0;
  Micros p50_us = 0;
  Micros p99_us = 0;
  double bytes_per_s = 0;
};

Micros percentile(std::vector<Micros>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

std::uint64_t sum_counters(const std::vector<obs::Counter*>& counters) {
  std::uint64_t total = 0;
  for (const obs::Counter* c : counters) total += c->value();
  return total;
}

/// Closed loop: each client keeps `depth` requests outstanding until
/// `total` have completed across all clients.
PhaseRow run_phase(net::EventLoop& loop, std::vector<BenchClient>& clients,
                   const std::string& phase, std::size_t shards,
                   std::size_t total, const Op& op,
                   const std::vector<obs::Counter*>& rx,
                   const std::vector<obs::Counter*>& tx) {
  PhaseRow row;
  row.phase = phase;
  row.shards = shards;
  row.concurrency = static_cast<int>(clients.size());
  row.requests = total;

  std::vector<Micros> latencies;
  latencies.reserve(total);
  std::size_t issued = 0, done = 0;
  std::function<void(std::size_t)> issue = [&](std::size_t ci) {
    if (issued >= total) return;
    ++issued;
    const Micros t0 = loop.clock().now_us();
    op(clients[ci], [&, ci, t0](bool ok) {
      latencies.push_back(loop.clock().now_us() - t0);
      if (!ok) ++row.failures;
      ++done;
      issue(ci);
    });
  };

  const std::uint64_t rx0 = sum_counters(rx), tx0 = sum_counters(tx);
  const Micros start = loop.clock().now_us();
  for (std::size_t ci = 0; ci < clients.size(); ++ci) {
    for (std::size_t d = 0; d < kPipelineDepth; ++d) issue(ci);
  }
  const Micros deadline = start + 180'000'000;
  while (done < total) {
    if (loop.clock().now_us() >= deadline) {
      std::fprintf(stderr, "FAILED: phase %s stalled (%zu/%zu done)\n",
                   phase.c_str(), done, total);
      std::exit(1);
    }
    loop.poll(20'000);
  }
  const Micros wall = loop.clock().now_us() - start;

  row.wall_s = static_cast<double>(wall) / 1e6;
  row.req_per_s = static_cast<double>(total) / row.wall_s;
  std::sort(latencies.begin(), latencies.end());
  row.p50_us = percentile(latencies, 0.50);
  row.p99_us = percentile(latencies, 0.99);
  row.bytes_per_s =
      static_cast<double>((sum_counters(rx) - rx0) +
                          (sum_counters(tx) - tx0)) /
      row.wall_s;
  return row;
}

/// Hot-counter contention before/after: the registry's Counter used to be
/// one shared atomic — every inc() from the event-loop thread and all
/// workers bounced a single cache line. It is now sharded into
/// cache-line-sized cells (obs::Counter::kCells). This microbench runs the
/// same multithreaded increment storm against both layouts so the JSON
/// records the speedup the net.* / securechan.* hot paths got. The
/// speedup only manifests with real parallel cores: on a single-core
/// host the shared atomic never bounces between caches, so the sharded
/// layout shows only its per-inc overhead — `cores` is recorded so a
/// regression diff can tell the two situations apart.
struct CounterBench {
  int threads = 0;
  unsigned cores = 0;  // hardware_concurrency at run time
  std::uint64_t per_thread = 0;
  double single_atomic_mops = 0;  // "before": one shared atomic
  double sharded_mops = 0;        // "after": obs::Counter
  double speedup = 0;
};

CounterBench run_counter_bench() {
  CounterBench result;
  result.cores = std::thread::hardware_concurrency();
  result.threads =
      static_cast<int>(std::min(8u, std::max(2u, result.cores)));
  result.per_thread = 2'000'000;

  const auto storm = [&](auto&& bump) {
    std::vector<std::thread> workers;
    const auto t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < result.threads; ++t) {
      workers.emplace_back([&] {
        for (std::uint64_t i = 0; i < result.per_thread; ++i) bump();
      });
    }
    for (auto& w : workers) w.join();
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - t0;
    const double total = static_cast<double>(result.threads) *
                         static_cast<double>(result.per_thread);
    return total / wall.count() / 1e6;
  };

  std::atomic<std::uint64_t> single{0};
  result.single_atomic_mops =
      storm([&] { single.fetch_add(1, std::memory_order_relaxed); });

  obs::Counter sharded;
  result.sharded_mops = storm([&] { sharded.inc(); });
  if (sharded.value() !=
      static_cast<std::uint64_t>(result.threads) * result.per_thread) {
    std::fprintf(stderr, "FAILED: sharded counter lost increments\n");
    std::exit(1);
  }
  result.speedup = result.single_atomic_mops > 0
                       ? result.sharded_mops / result.single_atomic_mops
                       : 0;
  return result;
}

void write_json(const char* path, const std::vector<PhaseRow>& rows,
                const CounterBench& counters) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) {
    std::perror("fopen");
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"net_loopback\",\n");
  std::fprintf(f,
               "  \"transport\": \"tcp 127.0.0.1 (epoll event loop, "
               "TCP_NODELAY, SO_REUSEPORT at shards > 1)\",\n");
  std::fprintf(f, "  \"pipeline_depth\": %zu,\n", kPipelineDepth);
  std::fprintf(f,
               "  \"counter_contention\": {\"threads\": %d, \"cores\": %u, "
               "\"increments_per_thread\": %llu, "
               "\"single_atomic_mops\": %.1f, \"sharded_mops\": %.1f, "
               "\"speedup\": %.2f},\n",
               counters.threads, counters.cores,
               static_cast<unsigned long long>(counters.per_thread),
               counters.single_atomic_mops, counters.sharded_mops,
               counters.speedup);
  std::fprintf(f, "  \"phases\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PhaseRow& r = rows[i];
    std::fprintf(f,
                 "    {\"phase\": \"%s\", \"shards\": %zu, "
                 "\"concurrency\": %d, "
                 "\"requests\": %zu, \"failures\": %zu, "
                 "\"wall_s\": %.3f, \"req_per_s\": %.1f, "
                 "\"p50_us\": %lld, \"p99_us\": %lld, "
                 "\"bytes_per_s\": %.0f}%s\n",
                 r.phase.c_str(), r.shards, r.concurrency, r.requests,
                 r.failures, r.wall_s, r.req_per_s,
                 static_cast<long long>(r.p50_us),
                 static_cast<long long>(r.p99_us), r.bytes_per_s,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// Collapses the simulated WAN/WiFi model and virtual CPU charges so the
/// measurement isolates the real transport + real crypto.
eval::TestbedConfig bench_config() {
  eval::TestbedConfig config;
  // Enough workers that concurrency x pipeline password requests (which
  // hold a worker for the whole phone round trip, CherryPy-style) never
  // starve the phone's own /token posts — the transport stays the subject.
  config.server.workers = 64;
  config.server.mp_hash.iterations = 1'000;
  config.server.token_compute_mean_ms = 0.0;
  config.server.token_compute_stddev_ms = 0.0;
  config.server.light_compute_ms = 0.0;
  config.phone.compute_mean_ms = 0.0;
  config.phone.compute_stddev_ms = 0.0;
  return config;
}

void flatten_links(eval::Testbed& bed) {
  simnet::LinkProfile fast;
  fast.name = "near-zero";
  fast.base_latency_ms = 0.01;
  fast.jitter_ms = 0.0;
  fast.min_latency_ms = 0.005;
  fast.bandwidth_mbps = 40'000.0;
  fast.loss_probability = 0.0;
  bed.net().set_default_link(fast);
  bed.net().set_duplex_link("amnesia-server", "gcm", fast, fast);
  bed.net().set_duplex_link("gcm", "phone", fast, fast);
  bed.net().set_duplex_link("phone", "amnesia-server", fast, fast);
  bed.net().set_duplex_link("phone", "cloud", fast, fast);
}

std::vector<std::size_t> parse_shard_counts(const char* arg) {
  std::vector<std::size_t> counts;
  std::string token;
  for (const char* p = arg;; ++p) {
    if (*p != '\0' && *p != ',') {
      token += *p;
      continue;
    }
    if (!token.empty()) {
      const long n = std::strtol(token.c_str(), nullptr, 10);
      if (n >= 1 &&
          std::find(counts.begin(), counts.end(),
                    static_cast<std::size_t>(n)) == counts.end()) {
        counts.push_back(static_cast<std::size_t>(n));
      }
      token.clear();
    }
    if (*p == '\0') break;
  }
  if (counts.empty()) counts.push_back(1);
  return counts;
}

/// One full concurrency sweep against an N-shard deployment.
int run_shard_matrix(std::size_t shards, std::vector<PhaseRow>& rows,
                     std::uint64_t& next_seed) {
  eval::ShardedTcpConfig sc;
  sc.shards = shards;
  sc.seed = 1;
  sc.base = bench_config();
  eval::ShardedTcpTestbed st(sc);

  const int max_conc = *std::max_element(kConcurrency.begin(),
                                         kConcurrency.end());
  for (std::size_t k = 0; k < st.shards(); ++k) flatten_links(st.bed(k));
  // One user per client slot, provisioned on its owner bed while the
  // deployment is still single-threaded; each then pins one account.
  for (int i = 0; i < max_conc; ++i) {
    const std::string user = bench_user(i);
    if (Status s = st.provision(user, kMasterPassword); !s.ok()) {
      std::fprintf(stderr, "FAILED: provision %s: %s\n", user.c_str(),
                   s.message().c_str());
      return 1;
    }
    eval::Testbed& owner = st.bed(st.owner_of(user));
    if (Status s = owner.add_account(kAccountUser, kAccountDomain); !s.ok()) {
      std::fprintf(stderr, "FAILED: add_account %s: %s\n", user.c_str(),
                   s.message().c_str());
      return 1;
    }
  }
  st.start();

  std::vector<obs::Counter*> rx, tx;
  for (std::size_t k = 0; k < st.shards(); ++k) {
    rx.push_back(&st.bed(k).server().metrics().counter("net.bytes_rx"));
    tx.push_back(&st.bed(k).server().metrics().counter("net.bytes_tx"));
  }

  const Op login_op = [](BenchClient& c, std::function<void(bool)> cb) {
    c.browser->login(c.user, kMasterPassword,
                     [cb = std::move(cb)](Status s) { cb(s.ok()); });
  };
  const Op password_op = [](BenchClient& c, std::function<void(bool)> cb) {
    c.browser->request_password(
        kAccountUser, kAccountDomain,
        [cb = std::move(cb)](Result<std::string> r) { cb(r.ok()); });
  };

  net::EventLoop loop;
  for (const int conc : kConcurrency) {
    std::vector<BenchClient> clients;
    for (int i = 0; i < conc; ++i) {
      clients.push_back(make_client(loop, st.port(), st.public_key(),
                                    bench_user(i), next_seed++));
    }

    // Timed phase 1: login (handshake + PBKDF2, no phone round trip).
    PhaseRow login_row =
        run_phase(loop, clients, "login", shards,
                  static_cast<std::size_t>(conc) * 60, login_op, rx, tx);

    // Timed phase 2: bilateral password generation (phone confirms every
    // request; sessions already established by phase 1).
    PhaseRow password_row =
        run_phase(loop, clients, "password", shards,
                  static_cast<std::size_t>(conc) * 25, password_op, rx, tx);

    for (const PhaseRow& r : {login_row, password_row}) {
      std::printf("%-10s %6zu %5d %9zu %9.1f %10lld %10lld %12.0f\n",
                  r.phase.c_str(), r.shards, r.concurrency, r.requests,
                  r.req_per_s, static_cast<long long>(r.p50_us),
                  static_cast<long long>(r.p99_us), r.bytes_per_s);
      if (r.failures != 0) {
        std::fprintf(stderr, "FAILED: %zu/%zu %s requests failed at "
                     "concurrency %d, shards %zu\n",
                     r.failures, r.requests, r.phase.c_str(), r.concurrency,
                     r.shards);
        return 1;
      }
    }
    rows.push_back(login_row);
    rows.push_back(password_row);

    for (BenchClient& c : clients) c.rpc->close();
    // Drain the closed connections before the next level's accepts.
    for (int i = 0; i < 10; ++i) loop.poll(1'000);
  }
  st.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_net_loopback.json";
  const std::vector<std::size_t> shard_counts =
      parse_shard_counts(argc > 2 ? argv[2] : "1");

  std::vector<PhaseRow> rows;
  std::uint64_t next_seed = 1;
  std::printf("%-10s %6s %5s %9s %9s %10s %10s %12s\n", "phase", "shards",
              "conc", "reqs", "req/s", "p50_us", "p99_us", "bytes/s");
  for (const std::size_t shards : shard_counts) {
    if (run_shard_matrix(shards, rows, next_seed) != 0) return 1;
  }

  // Counter layout before/after (single shared atomic vs sharded cells).
  const CounterBench counters = run_counter_bench();
  std::printf("counter inc() contention, %d threads on %u core(s): "
              "single-atomic %.1f Mops/s -> sharded %.1f Mops/s (%.2fx)\n",
              counters.threads, counters.cores, counters.single_atomic_mops,
              counters.sharded_mops, counters.speedup);
  if (counters.cores < 2) {
    std::printf("  (single-core host: the shared atomic cannot bounce "
                "between caches, so only the sharded layout's per-inc "
                "overhead is visible)\n");
  }

  write_json(out_path, rows, counters);
  std::printf("wrote %s\n", out_path);
  return 0;
}
