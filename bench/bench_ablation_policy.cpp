// Ablation A3 (DESIGN.md): password policy (length x character classes).
//
// Section III-B4 lets users curtail length and restrict the character set
// per site policy; section IV-E analyzes only the default. This sweep
// quantifies what each restriction costs in keyspace and offline-cracking
// time, with the measured composition alongside.
//
//   ./bench/bench_ablation_policy
#include <cstdio>

#include "attacks/guessing.h"
#include "eval/strength.h"

using namespace amnesia;

int main() {
  struct CharsetOption {
    const char* name;
    core::CharacterTable table;
  };
  const CharsetOption charsets[] = {
      {"digits(10)", core::CharacterTable::from_categories(false, false,
                                                           true, false)},
      {"alnum(62)", core::CharacterTable::from_categories(true, true, true,
                                                          false)},
      {"full(94)", core::CharacterTable::default_table()},
  };

  std::printf("Ablation: per-account password policy "
              "(paper default: full 94-char set, length 32)\n\n");
  std::printf("%-12s %-6s %14s %22s %16s\n", "charset", "len", "keyspace",
              "crack@1e12/s (log10 s)", "measured distinct");

  for (const auto& charset : charsets) {
    for (const std::size_t length : {8u, 12u, 16u, 24u, 32u}) {
      const core::PasswordPolicy policy{charset.table, length};
      const double space = attacks::password_space_log10(policy);
      const double crack = attacks::crack_seconds_log10(space, 1e12);
      const auto comp = eval::measure_composition(500, policy, length);
      std::printf("%-12s %-6zu %14s %22.1f %10zu/500%s\n", charset.name,
                  length, attacks::scientific(space).c_str(), crack,
                  comp.distinct,
                  charset.table.size() == 94 && length == 32 ? "  <- paper"
                                                             : "");
    }
  }

  std::printf("\nReadout: an 8-digit PIN policy (1e8 space) is crackable "
              "offline in under a\nmillisecond at 1e12/s; the default "
              "94^32 needs ~1e43 years. Even alnum-16\n(4.8e28) is far "
              "beyond offline reach — length dominates charset width.\n");
  return 0;
}
