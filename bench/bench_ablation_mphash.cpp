// Ablation A5: master-password storage scheme.
//
// Table I stores H(MP + salt) — one SHA-256. Our default substitutes
// PBKDF2-HMAC-SHA256; this bench quantifies what the substitution buys by
// measuring real guesses/second an offline attacker gets against each
// scheme on this machine, then translating common password-strength
// levels into crack times. It also measures the server-side cost per
// login, the trade-off the work factor tunes.
//
//   ./bench/bench_ablation_mphash
#include <chrono>
#include <cmath>
#include <cstdio>

#include "attacks/guessing.h"
#include "crypto/drbg.h"
#include "crypto/password_hash.h"

using namespace amnesia;

namespace {

/// Measured single-thread verification attempts per second.
double measure_guess_rate(const crypto::PasswordRecord& record,
                          int min_iters = 50) {
  // Warm up and time a batch of wrong guesses.
  const auto start = std::chrono::steady_clock::now();
  int n = 0;
  while (true) {
    for (int i = 0; i < 10; ++i, ++n) {
      crypto::PasswordHasher::verify(to_bytes("guess-" + std::to_string(n)),
                                     record);
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    if (n >= min_iters &&
        elapsed > std::chrono::milliseconds(200)) {
      return n / std::chrono::duration<double>(elapsed).count();
    }
  }
}

void print_crack_row(const char* label, double bits, double rate) {
  const double space_log10 = bits * std::log10(2.0);
  const double seconds_log10 = attacks::crack_seconds_log10(space_log10, rate);
  const double seconds = std::pow(10.0, seconds_log10);
  char rendered[64];
  if (seconds < 1.0) {
    std::snprintf(rendered, sizeof(rendered), "%.3f s", seconds);
  } else if (seconds < 3600.0) {
    std::snprintf(rendered, sizeof(rendered), "%.1f min", seconds / 60);
  } else if (seconds < 86400.0 * 365) {
    std::snprintf(rendered, sizeof(rendered), "%.1f days", seconds / 86400);
  } else {
    std::snprintf(rendered, sizeof(rendered), "%.1e years",
                  seconds / (86400.0 * 365));
  }
  std::printf("    %-34s %s\n", label, rendered);
}

}  // namespace

int main() {
  crypto::ChaChaDrbg rng(5);
  std::printf("Ablation: master-password storage "
              "(paper: one salted SHA-256; our default: PBKDF2 10k)\n\n");

  struct SchemeOption {
    const char* name;
    crypto::PasswordHasherOptions options;
  };
  const SchemeOption schemes[] = {
      {"legacy H(MP+salt)  [paper]",
       {.scheme = crypto::HashScheme::kLegacySaltedSha256, .iterations = 1}},
      {"PBKDF2 1k", {.iterations = 1'000}},
      {"PBKDF2 10k [default]", {.iterations = 10'000}},
      {"PBKDF2 100k", {.iterations = 100'000}},
  };

  for (const auto& scheme : schemes) {
    crypto::PasswordHasher hasher(scheme.options);
    const auto record = hasher.hash(to_bytes("the master password"), rng);

    const auto t0 = std::chrono::steady_clock::now();
    crypto::PasswordHasher::verify(to_bytes("the master password"), record);
    const double login_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    const double rate = measure_guess_rate(record);

    std::printf("%-28s login cost %8.3f ms   offline rate %12.0f guesses/s\n",
                scheme.name, login_ms, rate);
    print_crack_row("6-char lowercase (28.2 bits):", 28.2, rate);
    print_crack_row("typical human password (~30 bits):", 30.0, rate);
    print_crack_row("4 random diceware words (51.7 bits):", 51.7, rate);
    std::printf("\n");
  }

  std::printf("Context: even a cracked master password yields no Amnesia "
              "site password\nwithout the phone (see bench_security_attacks) "
              "— the work factor buys time\nto execute the recovery "
              "protocol, not the last line of defence.\n");
  return 0;
}
