// Security evaluation harness: runs every section-IV adversary against
// Amnesia and the analogous breaches against the baseline managers, then
// prints the outcome matrix the security analysis argues in prose.
//
//   ./bench/bench_security_attacks
#include <cstdio>

#include "attacks/scenarios.h"
#include "baselines/browser_store.h"
#include "baselines/cloud_vault.h"
#include "crypto/drbg.h"

using namespace amnesia;

namespace {

const char* outcome(bool leaked) { return leaked ? "PASSWORDS LOST" : "safe"; }

}  // namespace

int main() {
  const core::AccountId gmail{"Alice", "mail.google.com"};
  const std::string weak_mp = "princess";
  const std::vector<std::string> dictionary = {"123456", "password",
                                               "princess", "qwerty"};

  std::printf("Security analysis harness (paper section IV)\n");
  std::printf("Victim: weak master password '%s' (in the attacker's "
              "%zu-word dictionary)\n\n",
              weak_mp.c_str(), dictionary.size());

  // ---- Amnesia under all five vectors.
  eval::TestbedConfig config;
  config.server.mp_hash.iterations = 64;
  eval::Testbed bed(config);
  if (!bed.provision("alice", weak_mp).ok() ||
      !bed.add_account(gmail.username, gmail.domain).ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  const auto breach = attacks::run_server_breach(bed, "alice", dictionary);
  const auto phone = attacks::run_phone_compromise(bed, "alice", gmail);
  const auto eavesdrop = attacks::run_rendezvous_eavesdrop(
      bed, "alice", gmail, {gmail, {"Bob", "www.yahoo.com"}});
  const auto browser_leg =
      attacks::run_browser_leg_compromise(bed, "alice", gmail);
  const auto phone_leg =
      attacks::run_phone_leg_compromise(bed, "alice", gmail);
  const auto rogue_naive =
      attacks::run_rogue_request(bed, "alice", gmail, /*user_accepts=*/true);

  std::printf("== Amnesia ==\n");
  std::printf("  %-44s %s%s\n", "server breach (full data at rest):",
              outcome(breach.site_password_recovered),
              breach.master_password_cracked
                  ? "  [MP cracked offline; still no site password]"
                  : "");
  std::printf("  %-44s %s\n", "phone compromise (full K_p):",
              outcome(phone.site_password_recovered));
  std::printf("  %-44s %s  [R observed %zux, account not identifiable]\n",
              "rendezvous eavesdropping:",
              outcome(eavesdrop.account_identified),
              eavesdrop.requests_observed);
  std::printf("  %-44s %s  [paper-admitted exposure]\n",
              "broken HTTPS, browser leg:",
              outcome(browser_leg.generated_password_stolen));
  std::printf("  %-44s %s  [T visible but useless]\n",
              "broken HTTPS, phone leg:",
              outcome(phone_leg.password_derived_from_token));
  std::printf("  %-44s %s  [paper-admitted: naive user]\n",
              "server breach + rogue push, user accepts:",
              outcome(rogue_naive.site_password_recovered));
  std::printf("  %-44s %s\n", "phone + server both compromised:",
              outcome(phone.password_recovered_with_server_breach));

  // ---- Baselines under their single-point-of-failure breaches.
  std::printf("\n== Baselines under the equivalent breach ==\n");
  crypto::ChaChaDrbg rng(99);

  baselines::BrowserStore firefox(rng, 64);
  firefox.setup(weak_mp);
  firefox.save(gmail, "firefox-stored-pw");
  const auto firefox_rest = firefox.data_at_rest();
  bool firefox_cracked = false;
  for (const auto& guess : dictionary) {
    if (crypto::PasswordHasher::verify(to_bytes(guess),
                                       firefox_rest.verifier)) {
      firefox_cracked = true;  // key = KDF(guess) then decrypts every record
      break;
    }
  }
  std::printf("  %-44s %s  [computer theft + dictionary]\n",
              "Firefox (MP) local store:", outcome(firefox_cracked));

  baselines::VaultServer vault_server;
  baselines::VaultClient lastpass(vault_server, rng, "alice@example.com", 64);
  lastpass.setup(weak_mp);
  lastpass.save(gmail, "lastpass-stored-pw");
  bool vault_cracked = false;
  const auto& blob =
      vault_server.data_at_rest().at("alice@example.com").encrypted_vault;
  for (const auto& guess : dictionary) {
    if (baselines::VaultClient::try_decrypt(blob, guess, "alice@example.com",
                                            64)) {
      vault_cracked = true;
      break;
    }
  }
  std::printf("  %-44s %s  [server breach + dictionary, paper [7]]\n",
              "LastPass cloud vault:", outcome(vault_cracked));

  std::printf("  %-44s %s  [MP is the only secret]\n",
              "PwdHash-style generative:",
              outcome(true /* MP in dictionary => all passwords derivable */));

  std::printf("  %-44s %s  [wallet ciphertext only]\n",
              "Tapas, phone stolen:", outcome(false));

  std::printf("\nHeadline: with a dictionary-weak master password, every "
              "single-factor manager\nloses all site passwords to its "
              "single point of failure; bilateral Amnesia loses\nnone until "
              "BOTH factors fall (or the user approves a rogue request).\n");
  return 0;
}
