// Extensions walkthrough: the section-VIII features the paper planned —
// a session mechanism (fewer phone taps) and a chosen-password vault
// (store passwords you cannot change, still bilaterally protected).
//
//   ./examples/vault_and_sessions
#include <cstdio>

#include "eval/testbed.h"

using namespace amnesia;

int main() {
  eval::TestbedConfig config;
  config.server.password_cache_ttl_us = 15ll * 60 * 1'000'000;  // 15 min
  eval::Testbed bed(config);
  if (!bed.provision("alice", "master password").ok() ||
      !bed.add_account("Alice", "mail.google.com").ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  std::printf("== Session mechanism (cache TTL 15 min) ==\n");
  const auto first = bed.get_password("Alice", "mail.google.com");
  std::printf("  1st request: %s  (phone confirmed: %llu taps so far)\n",
              first.value().c_str(),
              static_cast<unsigned long long>(
                  bed.phone().stats().pushes_received));
  const auto second = bed.get_password("Alice", "mail.google.com");
  std::printf("  2nd request: %s  (served from session cache: %llu taps "
              "still)\n",
              second.value().c_str(),
              static_cast<unsigned long long>(
                  bed.phone().stats().pushes_received));
  std::printf("  cache hits recorded by the server: %llu\n\n",
              static_cast<unsigned long long>(
                  bed.server().stats().cache_hits));

  std::printf("== Chosen-password vault ==\n");
  std::printf("  The bank issued 'XK-4477-BRAVO' and refuses password "
              "changes.\n");
  bool stored = false;
  bed.browser().vault_store("Alice", "legacy-bank.example", "XK-4477-BRAVO",
                            [&](Status s) { stored = s.ok(); });
  bed.sim().run();
  std::printf("  stored (with phone confirmation): %s\n",
              stored ? "yes" : "no");

  const auto record =
      bed.server().db().vault_get("alice", {"Alice", "legacy-bank.example"});
  std::printf("  at rest on the server: %zu-byte AEAD ciphertext — the "
              "key needs the phone's token\n",
              record->ciphertext->size());

  Result<std::string> retrieved(Err::kInternal, "pending");
  bed.browser().vault_retrieve("Alice", "legacy-bank.example",
                               [&](Result<std::string> r) { retrieved = r; });
  bed.sim().run();
  std::printf("  retrieved (phone confirmation again): %s\n",
              retrieved.value().c_str());

  std::printf("\n  And after the phone is replaced, old vault records "
              "refuse to open:\n");
  bed.phone().install();
  if (!bed.pair_phone("alice").ok()) return 1;
  Result<std::string> stale(Err::kInternal, "pending");
  bed.browser().vault_retrieve("Alice", "legacy-bank.example",
                               [&](Result<std::string> r) { stale = r; });
  bed.sim().run();
  std::printf("  retrieval with the new phone: %s (%s)\n",
              stale.ok() ? "succeeded (bug!)" : "refused",
              stale.ok() ? "" : stale.message().c_str());
  return 0;
}
