// serve: the Amnesia server on a real TCP socket.
//
// The full server stack (routes, worker pool, secure channel, rendezvous,
// phone) runs inside the simulation; server::NetGateway bridges it onto
// net::TcpTransport so real clients reach it over loopback or the LAN.
// Three modes:
//
//   ./serve
//       Self-contained demo (and ctest smoke test): server plus a
//       wire-backed client::Browser in one process, ephemeral ports on
//       127.0.0.1. Runs the six-step flow of Fig. 1 — login, account
//       creation, bilateral password generation with the (simulated)
//       phone confirming — entirely over real TCP, then scrapes
//       GET /metrics over a second plain-HTTP connection.
//
//   ./serve --listen PORT [HTTP_PORT]
//       Long-running server. Provisions the demo user and prints the
//       pinned channel key (the self-signed certificate) for clients.
//
//   ./serve --connect HOST PORT KEY_HEX [USER] [MASTER_PASSWORD]
//       Standalone client: logs in and requests the demo password over
//       the network. KEY_HEX is the key --listen printed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <sstream>
#include <string>

#include "client/browser.h"
#include "common/bytes.h"
#include "crypto/drbg.h"
#include "eval/testbed.h"
#include "net/event_loop.h"
#include "net/rpc.h"
#include "net/tcp.h"
#include "server/gateway.h"
#include "websvc/http.h"

using namespace amnesia;

namespace {

constexpr const char* kDemoUser = "alice";
constexpr const char* kDemoMasterPassword = "correct horse battery staple";
constexpr const char* kDemoAccountUser = "Alice";
constexpr const char* kDemoAccountDomain = "mail.google.com";

void check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "FAILED: %s: %s\n", what, s.message().c_str());
    std::exit(1);
  }
  std::printf("  ok: %s\n", what);
}

/// Polls the loop until the captured callback fires (all protocol work —
/// client, gateway, and simulation — happens inside poll()).
template <typename T>
class Waiter {
 public:
  explicit Waiter(net::EventLoop& loop) : loop_(loop) {}

  std::function<void(T)> capture() {
    return [this](T value) { result_ = std::make_unique<T>(std::move(value)); };
  }

  T wait(Micros timeout_us = 60'000'000) {
    const Micros deadline = loop_.clock().now_us() + timeout_us;
    while (!result_) {
      if (loop_.clock().now_us() >= deadline) {
        std::fprintf(stderr, "FAILED: operation timed out\n");
        std::exit(1);
      }
      loop_.poll(20'000);
    }
    return std::move(*result_);
  }

 private:
  net::EventLoop& loop_;
  std::unique_ptr<T> result_;
};

/// Provisions the demo account in-sim (signup, pairing, backup, one
/// website account) so TCP clients can log straight in.
std::unique_ptr<eval::Testbed> make_provisioned_testbed() {
  auto bed = std::make_unique<eval::Testbed>();
  if (Status s = bed->provision(kDemoUser, kDemoMasterPassword); !s.ok()) {
    std::fprintf(stderr, "FAILED: provision: %s\n", s.message().c_str());
    std::exit(1);
  }
  if (Status s = bed->add_account(kDemoAccountUser, kDemoAccountDomain);
      !s.ok()) {
    std::fprintf(stderr, "FAILED: add_account: %s\n", s.message().c_str());
    std::exit(1);
  }
  return bed;
}

/// True once `wire` holds a complete HTTP response (head + full body).
bool response_complete(const std::string& wire) {
  const std::size_t head_end = wire.find("\r\n\r\n");
  if (head_end == std::string::npos) return false;
  const std::size_t cl = wire.find("Content-Length:");
  if (cl == std::string::npos || cl > head_end) return true;
  const std::size_t len =
      std::strtoul(wire.c_str() + cl + std::strlen("Content-Length:"), nullptr,
                   10);
  return wire.size() >= head_end + 4 + len;
}

/// Raw-socket GET against the gateway's plain-HTTP port (exactly what a
/// metrics scraper would do).
std::string scrape_metrics(net::EventLoop& loop, std::uint16_t http_port) {
  net::TcpTransport dial(loop, "127.0.0.1", http_port);
  net::StreamPtr stream;
  std::string wire;
  bool closed = false;
  dial.connect([&](Result<net::StreamPtr> r) {
    if (!r.ok()) {
      std::fprintf(stderr, "FAILED: metrics connect: %s\n",
                   r.message().c_str());
      std::exit(1);
    }
    stream = r.value();
    stream->set_handlers(
        {[&](ByteView chunk) {
           wire.append(reinterpret_cast<const char*>(chunk.data()),
                       chunk.size());
         },
         [&]() { closed = true; }});
    websvc::Request req;
    req.path = "/metrics";
    stream->send(websvc::serialize(req));
  });
  const Micros deadline = loop.clock().now_us() + 10'000'000;
  while (!response_complete(wire) && !closed) {
    if (loop.clock().now_us() >= deadline) {
      std::fprintf(stderr, "FAILED: metrics scrape timed out\n");
      std::exit(1);
    }
    loop.poll(20'000);
  }
  if (stream) stream->close();
  const websvc::Response resp = websvc::parse_response(to_bytes(wire));
  if (resp.status != 200) {
    std::fprintf(stderr, "FAILED: GET /metrics -> %d\n", resp.status);
    std::exit(1);
  }
  return resp.body;
}

int run_demo() {
  std::printf("== 1. Provision the demo user (in-simulation) ==\n");
  auto bed = make_provisioned_testbed();
  std::printf("  ok: %s paired and backed up, one account on %s\n", kDemoUser,
              kDemoAccountDomain);

  std::printf("\n== 2. Serve over real TCP (epoll event loop) ==\n");
  net::EventLoop loop;
  net::TcpTransport secure_tr(loop, "127.0.0.1", 0);
  net::TcpTransport http_tr(loop, "127.0.0.1", 0);
  secure_tr.set_metrics(&bed->server().metrics());
  server::NetGateway gateway(secure_tr, &http_tr, bed->server());
  std::printf("  secure-channel RPC on 127.0.0.1:%u, /metrics on "
              "127.0.0.1:%u\n",
              secure_tr.local_port(), http_tr.local_port());

  std::printf("\n== 3. Six-step flow from a wire-backed browser ==\n");
  net::TcpTransport dial(loop, "127.0.0.1", secure_tr.local_port());
  net::RpcClient rpc(dial, 30'000'000);
  crypto::ChaChaDrbg rng(0x5e12e);
  client::Browser browser(rpc.wire(), bed->server().public_key(), rng,
                          "tcp-browser");
  {
    Waiter<Status> w(loop);
    browser.login(kDemoUser, kDemoMasterPassword, w.capture());
    check(w.wait(), "login over TCP");
  }
  {
    Waiter<Status> w(loop);
    browser.add_account("Bob", "www.yahoo.com", w.capture());
    check(w.wait(), "add account over TCP");
  }
  for (const auto& [username, domain] :
       {std::pair<std::string, std::string>{kDemoAccountUser,
                                            kDemoAccountDomain},
        {"Bob", "www.yahoo.com"}}) {
    Waiter<Result<std::string>> w(loop);
    browser.request_password(username, domain, w.capture());
    const Result<std::string> password = w.wait();
    if (!password.ok()) {
      std::fprintf(stderr, "FAILED: password for %s@%s: %s\n",
                   username.c_str(), domain.c_str(),
                   password.message().c_str());
      return 1;
    }
    std::printf("  %-8s %-18s -> %s   (phone confirmed in-sim)\n",
                username.c_str(), domain.c_str(), password.value().c_str());
  }

  std::printf("\n== 4. GET /metrics over plain HTTP ==\n");
  const std::string metrics = scrape_metrics(loop, http_tr.local_port());
  std::istringstream lines(metrics);
  std::string line;
  while (std::getline(lines, line)) {
    // Snapshot lines read "counter net.bytes_rx 4242".
    const bool scalar = line.rfind("counter ", 0) == 0 ||
                        line.rfind("gauge ", 0) == 0;
    if (scalar && (line.find(" net.") != std::string::npos ||
                   line.find(" http.") != std::string::npos)) {
      std::printf("  %s\n", line.c_str());
    }
  }

  rpc.close();
  std::printf("\nDone: identical protocol bytes, real sockets underneath.\n");
  return 0;
}

int run_listen(std::uint16_t port, std::uint16_t http_port) {
  auto bed = make_provisioned_testbed();
  net::EventLoop loop;
  net::TcpTransport secure_tr(loop, "0.0.0.0", port);
  secure_tr.set_metrics(&bed->server().metrics());
  std::unique_ptr<net::TcpTransport> http_tr;
  if (http_port != 0) {
    http_tr = std::make_unique<net::TcpTransport>(loop, "0.0.0.0", http_port);
  }
  server::NetGateway gateway(secure_tr, http_tr.get(), bed->server());

  std::printf("amnesia-server listening\n");
  std::printf("  secure-channel RPC : 0.0.0.0:%u\n", secure_tr.local_port());
  if (http_tr) {
    std::printf("  plain HTTP /metrics: 0.0.0.0:%u\n", http_tr->local_port());
  }
  std::printf("  pinned channel key : %s\n",
              hex_encode(bed->server().public_key()).c_str());
  std::printf("  demo credentials   : %s / \"%s\" (account %s@%s)\n",
              kDemoUser, kDemoMasterPassword, kDemoAccountUser,
              kDemoAccountDomain);
  std::printf("connect with:\n  serve --connect <host> %u %s\n",
              secure_tr.local_port(),
              hex_encode(bed->server().public_key()).c_str());
  // The banner (key + credentials) must reach pipes/log files before the
  // loop blocks; stdout is fully buffered when not a terminal.
  std::fflush(stdout);
  loop.run();
  return 0;
}

int run_connect(const std::string& host, std::uint16_t port,
                const std::string& key_hex, const std::string& user,
                const std::string& master_password) {
  const Bytes key_bytes = hex_decode(key_hex);
  if (key_bytes.size() != crypto::kX25519KeySize) {
    std::fprintf(stderr, "bad key: want %zu hex bytes, got %zu\n",
                 crypto::kX25519KeySize, key_bytes.size());
    return 2;
  }
  crypto::X25519Key server_key{};
  std::copy(key_bytes.begin(), key_bytes.end(), server_key.begin());

  net::EventLoop loop;
  net::TcpTransport dial(loop, host, port);
  net::RpcClient rpc(dial, 30'000'000);
  crypto::ChaChaDrbg rng(static_cast<std::uint64_t>(std::random_device{}()));
  client::Browser browser(rpc.wire(), server_key, rng, "remote-browser");

  {
    Waiter<Status> w(loop);
    browser.login(user, master_password, w.capture());
    check(w.wait(), "login");
  }
  Waiter<Result<std::string>> w(loop);
  browser.request_password(kDemoAccountUser, kDemoAccountDomain, w.capture());
  const Result<std::string> password = w.wait();
  if (!password.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", password.message().c_str());
    return 1;
  }
  std::printf("%s@%s -> %s\n", kDemoAccountUser, kDemoAccountDomain,
              password.value().c_str());
  rpc.close();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return run_demo();
  const std::string mode = argv[1];
  if (mode == "--listen" && (argc == 3 || argc == 4)) {
    return run_listen(static_cast<std::uint16_t>(std::atoi(argv[2])),
                      argc == 4
                          ? static_cast<std::uint16_t>(std::atoi(argv[3]))
                          : 0);
  }
  if (mode == "--connect" && (argc == 5 || argc == 7)) {
    return run_connect(argv[2],
                       static_cast<std::uint16_t>(std::atoi(argv[3])), argv[4],
                       argc == 7 ? argv[5] : kDemoUser,
                       argc == 7 ? argv[6] : kDemoMasterPassword);
  }
  std::fprintf(stderr,
               "usage: %s\n"
               "       %s --listen PORT [HTTP_PORT]\n"
               "       %s --connect HOST PORT KEY_HEX [USER] [MP]\n",
               argv[0], argv[0], argv[0]);
  return 2;
}
