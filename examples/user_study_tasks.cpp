// The six tasks of the paper's user study (section VII-A), executed
// end-to-end against the dummy website the study used:
//   1. Create an Amnesia account
//   2. Download and register the Android application
//   3. Create an account on Amnesia for the dummy website
//   4. Generate a password for the dummy website
//   5. Create an account on the dummy website using the generated password
//   6. Post a comment on the dummy website containing the generated
//      password
//
//   ./examples/user_study_tasks
#include <cstdio>

#include "eval/dummy_site.h"
#include "eval/testbed.h"

using namespace amnesia;

namespace {
void check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "FAILED: %s: %s\n", what, s.message().c_str());
    std::exit(1);
  }
  std::printf("  ok: %s\n", what);
}
}  // namespace

int main() {
  eval::Testbed bed;
  // The dummy website and the participant's plain web connection to it.
  eval::DummySite site(bed.sim(), bed.net(), "dummy-site", bed.rng());
  simnet::Node web_node(bed.net(), "participant-web");
  eval::DummySiteClient site_client(web_node, "dummy-site");

  std::printf("Task 1: create an Amnesia account\n");
  check(bed.signup("participant", "participant master pw"), "signup");
  check(bed.login("participant", "participant master pw"), "login");

  std::printf("Task 2: download and register the application\n");
  check(bed.pair_phone("participant"), "install + GCM + CAPTCHA pairing");

  std::printf("Task 3: add the dummy website to Amnesia\n");
  check(bed.add_account("participant", "dummy-site.example"),
        "account entry (u, d, sigma) created");

  std::printf("Task 4: generate a password for the dummy website\n");
  const auto password = bed.get_password("participant", "dummy-site.example");
  if (!password.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", password.message().c_str());
    return 1;
  }
  std::printf("  ok: generated '%s'\n", password.value().c_str());

  std::printf("Task 5: register on the dummy website with it\n");
  Status step(Err::kInternal, "pending");
  site_client.register_account("participant", password.value(),
                               [&](Status s) { step = s; });
  bed.sim().run();
  check(step, "site registration");
  site_client.login("participant", password.value(),
                    [&](Status s) { step = s; });
  bed.sim().run();
  check(step, "site login with the generated password");

  std::printf("Task 6: post a comment containing the generated password\n");
  site_client.post_comment("my Amnesia password is " + password.value(),
                           [&](Status s) { step = s; });
  bed.sim().run();
  check(step, "comment posted");

  std::vector<std::string> comments;
  site_client.fetch_comments([&](Result<std::vector<std::string>> r) {
    if (r.ok()) comments = r.value();
  });
  bed.sim().run();
  std::printf("\nDummy site state: %zu registered user(s), comments:\n",
              site.registered_users());
  for (const auto& comment : comments) {
    std::printf("  %s\n", comment.c_str());
  }

  std::printf("\nEpilogue: the participant clears the browser, comes back "
              "later, regenerates\nthe same password through Amnesia, and "
              "logs in again:\n");
  const auto again = bed.get_password("participant", "dummy-site.example");
  site_client.login("participant", again.value(),
                    [&](Status s) { step = s; });
  bed.sim().run();
  check(step, "re-login with the regenerated password");
  std::printf("\nAll six study tasks complete — the workflow the 31 "
              "participants rated in Fig. 4.\n");
  return 0;
}
