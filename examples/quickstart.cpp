// Quickstart: the full Amnesia lifecycle on the simulated testbed.
//
// Walks the six-step flow of the paper's Fig. 1 — signup, phone pairing
// (CAPTCHA), account creation, bilateral password generation — and prints
// the server-side and phone-side state in the shape of the paper's
// Table I and Table II.
//
//   ./examples/quickstart
#include <cstdio>

#include "eval/testbed.h"
#include "eval/trace.h"

using namespace amnesia;

namespace {

std::string elide(const std::string& hex, std::size_t keep = 8) {
  return hex.size() <= keep ? "0x" + hex : "0x" + hex.substr(0, keep) + "...";
}

void check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "FAILED: %s: %s\n", what, s.message().c_str());
    std::exit(1);
  }
  std::printf("  ok: %s\n", what);
}

}  // namespace

int main() {
  eval::Testbed bed;

  std::printf("== 1. Create an Amnesia account (browser -> server) ==\n");
  check(bed.signup("alice", "my one master password"), "signup");
  check(bed.login("alice", "my one master password"), "login");

  std::printf("\n== 2. Pair the phone (install, GCM registration, CAPTCHA) ==\n");
  check(bed.pair_phone("alice"), "pairing");
  check(bed.backup_phone(), "one-time K_p backup to the cloud");

  std::printf("\n== 3. Add website accounts (the paper's Table I rows) ==\n");
  check(bed.add_account("Alice", "mail.google.com"), "add Alice@gmail");
  check(bed.add_account("Alice2", "www.facebook.com"), "add Alice2@facebook");
  check(bed.add_account("Bob", "www.yahoo.com"), "add Bob@yahoo");

  std::printf("\n== 4. Generate passwords (six-step flow of Fig. 1) ==\n");
  for (const auto& [username, domain] :
       {std::pair<std::string, std::string>{"Alice", "mail.google.com"},
        {"Alice2", "www.facebook.com"},
        {"Bob", "www.yahoo.com"}}) {
    const auto password = bed.get_password(username, domain);
    if (!password.ok()) {
      std::fprintf(stderr, "FAILED: %s\n", password.message().c_str());
      return 1;
    }
    std::printf("  %-8s %-18s -> %s\n", username.c_str(), domain.c_str(),
                password.value().c_str());
  }
  const auto& latencies = bed.server().password_latencies();
  std::printf("  (end-to-end generation latency: %.1f / %.1f / %.1f ms)\n",
              us_to_ms(latencies[0]), us_to_ms(latencies[1]),
              us_to_ms(latencies[2]));

  std::printf("\n== Server-side data (cf. paper Table I) ==\n");
  const auto user = bed.server().db().get_user("alice").value();
  std::printf("  %-16s %s\n", "Oid", elide(user.oid.hex()).c_str());
  std::printf("  %-16s %s\n", "Registration ID",
              user.registration_id->substr(0, 16).c_str());
  std::printf("  %-16s %s\n", "H(MP + salt)",
              elide(hex_encode(user.mp_record.hash)).c_str());
  std::printf("  %-16s %s\n", "H(Pid + salt)",
              elide(hex_encode(user.pid_record->hash)).c_str());
  std::printf("  %-16s %s\n", "Salt",
              elide(hex_encode(user.mp_record.salt)).c_str());
  for (const auto& account : bed.server().db().list_accounts("alice")) {
    std::printf("  (u,d,s)          (%s, %s, %s)\n",
                account.id.username.c_str(), account.id.domain.c_str(),
                elide(account.seed.hex()).c_str());
  }

  std::printf("\n== Application-side data (cf. paper Table II) ==\n");
  const auto& kp = bed.phone().secrets();
  std::printf("  %-6s %s\n", "Pid", elide(kp.pid.hex()).c_str());
  const std::size_t n = kp.entry_table.size();
  for (const std::size_t i : {std::size_t{0}, std::size_t{1}, n - 1}) {
    const std::string suffix =
        i == 1 ? "   ... (" + std::to_string(n - 3) + " more entries) ..."
               : "";
    std::printf("  e%-5zu %s%s\n", i + 1,
                elide(kp.entry_table.entry(i).hex()).c_str(), suffix.c_str());
  }

  std::printf("\n== Message flow of one generation (Fig. 1, traced live) ==\n");
  bed.sim().run();  // drain in-flight acknowledgements before tracing
  eval::TraceCollector trace(bed.net());
  if (!bed.get_password("Alice", "mail.google.com").ok()) return 1;
  bed.sim().run();
  std::printf("%s", trace.render().c_str());

  std::printf("\nDone: the computer stored nothing, the server alone cannot\n"
              "generate a password, and neither can the phone alone.\n");
  return 0;
}
