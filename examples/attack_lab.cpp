// Attack lab: runs the five adversaries of paper section IV against a
// live system and prints what each one learned.
//
//   ./examples/attack_lab
#include <cstdio>

#include "attacks/guessing.h"
#include "attacks/scenarios.h"

using namespace amnesia;

namespace {

const char* yn(bool v) { return v ? "YES" : "no"; }

}  // namespace

int main() {
  const core::AccountId gmail{"Alice", "mail.google.com"};

  std::printf("Provisioning a victim (user 'alice', weak-ish MP, two "
              "accounts, paired phone)...\n");
  eval::TestbedConfig config;
  config.server.mp_hash.iterations = 64;  // keep the dictionary demo fast
  eval::Testbed bed(config);
  if (!bed.provision("alice", "Tr0ub4dor&3").ok() ||
      !bed.add_account("Alice", "mail.google.com").ok() ||
      !bed.add_account("Bob", "www.yahoo.com").ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  std::printf("\n== IV-C: server breach (all data at rest) ==\n");
  const auto breach = attacks::run_server_breach(
      bed, "alice", {"123456", "password", "qwerty", "princess"});
  std::printf("  account identities visible:   %zu (",
              breach.visible_accounts.size());
  for (const auto& account : breach.visible_accounts) {
    std::printf(" %s", account.c_str());
  }
  std::printf(" )\n");
  std::printf("  Oid / seeds / Rid exposed:    %s / %s / %s\n",
              yn(breach.oid_exposed), yn(breach.seeds_exposed),
              yn(breach.registration_id_exposed));
  std::printf("  any site password recovered:  %s\n",
              yn(breach.site_password_recovered));
  std::printf("  token brute-force space:      %s combinations\n",
              attacks::scientific(breach.token_bruteforce_space_log10).c_str());
  std::printf("  MP cracked by %zu-word dict:   %s\n", breach.dictionary_size,
              yn(breach.master_password_cracked));

  std::printf("\n== IV-D: phone compromise (full K_p theft) ==\n");
  const auto phone = attacks::run_phone_compromise(bed, "alice", gmail);
  std::printf("  K_p extracted (N=%zu):        %s\n", phone.entry_table_size,
              yn(phone.kp_extracted));
  std::printf("  password from K_p alone:      %s "
              "(seed space %s)\n",
              yn(phone.site_password_recovered),
              attacks::scientific(phone.seed_space_log10).c_str());
  std::printf("  password with K_p AND K_s:    %s  <- both factors = breach\n",
              yn(phone.password_recovered_with_server_breach));

  std::printf("\n== IV-B: rendezvous (GCM) eavesdropping ==\n");
  const auto eavesdrop = attacks::run_rendezvous_eavesdrop(
      bed, "alice", gmail,
      {gmail, {"Bob", "www.yahoo.com"}, {"Alice", "bank.example"}});
  std::printf("  pushes observed in cleartext: %zu\n",
              eavesdrop.requests_observed);
  std::printf("  account identified from R:    %s (sigma blinds it)\n",
              yn(eavesdrop.account_identified));
  std::printf("  ...but WITHOUT sigma it would be: %s\n",
              yn(eavesdrop.account_identified_without_seed));

  std::printf("\n== IV-A: broken HTTPS, browser<->server leg ==\n");
  const auto browser_leg =
      attacks::run_browser_leg_compromise(bed, "alice", gmail);
  std::printf("  records decrypted:            %zu\n",
              browser_leg.records_decrypted);
  std::printf("  generated password stolen:    %s  <- the exposure the "
              "paper admits\n",
              yn(browser_leg.generated_password_stolen));

  std::printf("\n== IV-A: broken HTTPS, phone<->server leg ==\n");
  const auto phone_leg = attacks::run_phone_leg_compromise(bed, "alice", gmail);
  std::printf("  token T observed:             %s\n",
              yn(phone_leg.token_observed));
  std::printf("  password derived from T:      %s ('having T alone is "
              "useless')\n",
              yn(phone_leg.password_derived_from_token));

  std::printf("\n== IV-C coda: rogue request against a naive user ==\n");
  const auto naive = attacks::run_rogue_request(bed, "alice", gmail,
                                                /*user_accepts=*/true);
  std::printf("  push delivered/accepted:      %s / %s\n",
              yn(naive.push_delivered), yn(naive.user_accepted));
  std::printf("  token captured, password won: %s / %s\n",
              yn(naive.token_captured), yn(naive.site_password_recovered));

  const auto vigilant = attacks::run_rogue_request(bed, "alice", gmail,
                                                   /*user_accepts=*/false);
  std::printf("  ...and against a vigilant user: token %s, password %s\n",
              yn(vigilant.token_captured),
              yn(vigilant.site_password_recovered));

  std::printf("\nSummary: every claim of section IV reproduced — breaching "
              "any single\ncomponent yields no site password; the admitted "
              "exposures occur exactly\nwhere the paper says they do.\n");
  return 0;
}
