// Multi-computer access and explicit consent.
//
// The paper's deployability claim: "a user can have access to the
// password manager on multiple computers without installing any software
// on those computers." This example uses three browsers (home, office,
// hotel kiosk) against one account set, and shows the phone's
// confirmation screen (origin IP, Fig. 2b) letting the user veto a
// request from an unexpected machine.
//
//   ./examples/multi_computer
#include <cstdio>

#include "eval/testbed.h"

using namespace amnesia;

int main() {
  eval::Testbed bed;
  if (!bed.provision("alice", "master password").ok() ||
      !bed.add_account("Alice", "mail.google.com").ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  std::printf("Computers in play: home (provisioned), office, hotel kiosk.\n"
              "None of them store any Amnesia secret — only a session "
              "cookie after login.\n\n");

  auto office = bed.make_browser("office-pc");
  auto kiosk = bed.make_browser("hotel-kiosk");

  const auto from_home = bed.get_password("Alice", "mail.google.com");
  std::printf("home:   %s\n", from_home.value().c_str());

  if (!bed.login_from(*office, "alice", "master password").ok()) return 1;
  const auto from_office =
      bed.get_password_from(*office, "Alice", "mail.google.com");
  std::printf("office: %s  (same password, zero install)\n",
              from_office.value().c_str());

  std::printf("\nThe kiosk tries with a WRONG master password first:\n");
  const Status bad = bed.login_from(*kiosk, "alice", "guess123");
  std::printf("  login: %s\n", bad.ok() ? "accepted (bug!)" : "rejected");

  if (!bed.login_from(*kiosk, "alice", "master password").ok()) return 1;
  std::printf("\nKiosk logs in correctly; the user, suspicious of kiosks,\n"
              "inspects each confirmation on the phone:\n");
  int seen = 0;
  bed.phone().set_confirmation_policy(
      [&seen](const core::PasswordRequestPush& push) {
        ++seen;
        std::printf("  [phone] password request #%d from IP '%s' -> "
                    "user declines\n",
                    seen, push.origin_ip.c_str());
        return false;
      });
  const auto from_kiosk =
      bed.get_password_from(*kiosk, "Alice", "mail.google.com");
  std::printf("  kiosk outcome: %s (%s)\n",
              from_kiosk.ok() ? "got password" : "denied",
              from_kiosk.ok() ? "" : from_kiosk.message().c_str());

  std::printf("\nBack home, the user accepts again:\n");
  bed.phone().set_confirmation_policy(
      [](const core::PasswordRequestPush&) { return true; });
  const auto again = bed.get_password("Alice", "mail.google.com");
  std::printf("  home:   %s (deterministically identical: %s)\n",
              again.value().c_str(),
              again.value() == from_home.value() ? "yes" : "no");
  return 0;
}
