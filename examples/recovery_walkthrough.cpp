// Recovery walkthrough: both protocols of paper section III-C.
//
// Scenario 1 — the phone is stolen: the user restores the K_p backup from
// the third-party cloud, downloads the (still-current) passwords for one
// final login on every site, and re-pairs a new phone, after which every
// generated password is different.
//
// Scenario 2 — the master password leaks: the user initiates a change and
// confirms possession of the phone; the attacker's session dies with the
// old master password.
//
//   ./examples/recovery_walkthrough
#include <cstdio>

#include "cloud/blob_store.h"
#include "eval/testbed.h"

using namespace amnesia;

namespace {

void check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "FAILED: %s: %s\n", what, s.message().c_str());
    std::exit(1);
  }
  std::printf("  ok: %s\n", what);
}

}  // namespace

int main() {
  eval::Testbed bed;
  check(bed.provision("alice", "old master password"), "provision alice");
  check(bed.add_account("Alice", "mail.google.com"), "add gmail account");
  check(bed.add_account("Bob", "www.yahoo.com"), "add yahoo account");

  const auto gmail_before = bed.get_password("Alice", "mail.google.com");
  std::printf("  current gmail password: %s\n",
              gmail_before.value().c_str());

  std::printf("\n== Scenario 1: the phone is lost/stolen ==\n");
  std::printf("  1. Download the K_p backup from the cloud provider\n");
  Bytes backup;
  {
    simnet::Node pc(bed.net(), "recovery-pc");
    cloud::BlobClient cloud_client(pc, "cloud", "user@cloud.example",
                                   "cloud-credential");
    cloud_client.get("amnesia-kp-backup", [&](Result<Bytes> r) {
      if (r.ok()) backup = r.value();
    });
    bed.sim().run();
  }
  std::printf("     got %zu bytes (Pid + %zu-entry table)\n", backup.size(),
              bed.phone().secrets().entry_table.size());

  std::printf("  2. Upload it to the Amnesia server for verification\n");
  std::vector<client::RecoveredPassword> recovered;
  bed.browser().recover_phone(backup, [&](auto r) {
    if (r.ok()) recovered = r.value();
  });
  bed.sim().run();
  std::printf("     server verified H(Pid), regenerated %zu passwords and\n"
              "     purged the old phone's registration:\n",
              recovered.size());
  for (const auto& entry : recovered) {
    std::printf("       %-8s %-18s %s\n", entry.username.c_str(),
                entry.domain.c_str(), entry.password.c_str());
  }

  std::printf("  3. Pair a NEW phone (fresh install -> fresh Pid and T_E)\n");
  bed.phone().install();
  check(bed.pair_phone("alice"), "pair new phone");
  check(bed.backup_phone(), "back up the new K_p");

  const auto gmail_after = bed.get_password("Alice", "mail.google.com");
  std::printf("  new gmail password:     %s\n", gmail_after.value().c_str());
  std::printf("  -> differs from the old one: %s (two-factor security "
              "restored)\n",
              gmail_after.value() != gmail_before.value() ? "yes" : "NO!");

  std::printf("\n== Scenario 2: the master password is compromised ==\n");
  auto attacker = bed.make_browser("attacker-pc");
  check(bed.login_from(*attacker, "alice", "old master password"),
        "attacker logs in with the stolen master password");

  std::printf("  1. User initiates the change (knows the current MP)\n");
  bool started = false;
  bed.browser().start_mp_change("brand new master password",
                                [&](Status s) { started = s.ok(); });
  bed.sim().run();
  std::printf("     pending: %s\n", started ? "yes" : "no");

  std::printf("  2. Phone submits Pid to confirm possession\n");
  Status confirmed(Err::kInternal, "pending");
  bed.phone().submit_pid_for_mp_change("alice",
                                       [&](Status s) { confirmed = s; });
  bed.sim().run();
  check(confirmed, "phone verification");

  std::printf("  3. Consequences:\n");
  const Status old_login = bed.login("alice", "old master password");
  std::printf("     old master password still works: %s\n",
              old_login.ok() ? "YES (bug!)" : "no");
  Status attacker_session(Err::kInternal, "pending");
  attacker->add_account("evil", "evil.example",
                        [&](Status s) { attacker_session = s; });
  bed.sim().run();
  std::printf("     attacker's live session survives: %s\n",
              attacker_session.ok() ? "YES (bug!)" : "no (revoked)");
  check(bed.login("alice", "brand new master password"),
        "user logs in with the new master password");

  std::printf("\nBoth recovery protocols of section III-C complete.\n");
  return 0;
}
