// Manager comparison: the same user and accounts handled by all five
// schemes of the paper's Table III — plain passwords, a Firefox-style
// local store, a LastPass-style cloud vault, a Tapas-style dual-device
// wallet, and Amnesia — with the single-point-of-failure contrast made
// concrete.
//
//   ./examples/manager_comparison
#include <cstdio>

#include "baselines/browser_store.h"
#include "baselines/cloud_vault.h"
#include "baselines/pwdhash.h"
#include "baselines/tapas.h"
#include "crypto/drbg.h"
#include "eval/testbed.h"

using namespace amnesia;

int main() {
  const core::AccountId gmail{"Alice", "mail.google.com"};
  const std::string weak_mp = "princess";  // a typical human choice
  crypto::ChaChaDrbg rng(2024);

  std::printf("One user, one weak master password ('%s'), one account "
              "(%s@%s).\n\n",
              weak_mp.c_str(), gmail.username.c_str(), gmail.domain.c_str());

  std::printf("-- Plain password (the incumbent) --\n");
  std::printf("  the user memorizes 'princess123' and reuses it; any site "
              "breach leaks it everywhere\n\n");

  std::printf("-- Firefox-style local store --\n");
  baselines::BrowserStore firefox(rng, /*kdf_iterations=*/64);
  firefox.setup(weak_mp);
  firefox.save(gmail, "princess123");
  std::printf("  retrieve: %s\n", firefox.retrieve(gmail).value().c_str());
  std::printf("  thief with the laptop + dictionary: store falls offline "
              "(weak MP)\n\n");

  std::printf("-- LastPass-style cloud vault --\n");
  baselines::VaultServer vault_server;
  baselines::VaultClient lastpass(vault_server, rng, "alice@example.com", 64);
  lastpass.setup(weak_mp);
  lastpass.save(gmail, "Generated#Strong1");
  std::printf("  retrieve: %s\n", lastpass.retrieve(gmail).value().c_str());
  const auto& blob =
      vault_server.data_at_rest().at("alice@example.com").encrypted_vault;
  const auto cracked = baselines::VaultClient::try_decrypt(
      blob, weak_mp, "alice@example.com", 64);
  std::printf("  server breach + correct dictionary guess decrypts the "
              "vault: %s\n\n",
              cracked ? "YES (every password gone)" : "no");

  std::printf("-- PwdHash-style pure generative --\n");
  baselines::GenerativeManager pwdhash({.kdf_iterations = 64});
  std::printf("  derive(counter=0): %s\n",
              pwdhash.derive(weak_mp, gmail, 0).c_str());
  std::printf("  derive(counter=1): %s   <- user must remember the "
              "counter\n",
              pwdhash.derive(weak_mp, gmail, 1).c_str());
  std::printf("  nothing stored, but the master password is the single "
              "point of failure\n\n");

  std::printf("-- Tapas-style dual-device wallet --\n");
  baselines::TapasWallet wallet;
  baselines::TapasComputer pc(rng);
  pc.save(wallet, gmail, "Wallet#Password9");
  std::printf("  retrieve (phone+PC together): %s\n",
              pc.retrieve(wallet, gmail).value().c_str());
  baselines::TapasComputer thief_pc(rng);
  std::printf("  wallet alone (stolen phone):  %s\n",
              thief_pc.retrieve(wallet, gmail).ok() ? "decrypted (bug!)"
                                                    : "useless ciphertext");
  std::printf("  ...but it only works on the paired computer\n\n");

  std::printf("-- Amnesia --\n");
  eval::TestbedConfig config;
  config.server.mp_hash.iterations = 64;
  eval::Testbed bed(config);
  if (!bed.provision("alice", weak_mp).ok() ||
      !bed.add_account(gmail.username, gmail.domain).ok()) {
    std::fprintf(stderr, "amnesia setup failed\n");
    return 1;
  }
  const auto password = bed.get_password(gmail.username, gmail.domain);
  std::printf("  generate (MP + phone): %s\n", password.value().c_str());
  std::printf("  server breach alone:   no site password (needs the "
              "phone's token)\n");
  std::printf("  phone theft alone:     no site password (needs Oid and "
              "sigma)\n");
  std::printf("  weak MP cracked:       attacker still needs the phone — "
              "the bilateral split\n");
  std::printf("  works from any computer with zero installed software\n");
  return 0;
}
